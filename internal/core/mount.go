package core

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// VH is a virtual file handle: the identifier koshad hands the local NFS
// client in place of a real handle (Section 4.1.2). The indirection lets
// koshad transparently rebind a handle to a replica when the primary fails.
type VH uint64

// RootVH is the virtual handle of the mount root (/kosha).
const RootVH VH = 1

// ventry is one row of the virtual-handle table: virtual handle → full
// path, storage node, and real handle (Section 4.1.2 stores exactly this).
type ventry struct {
	vpath    string
	kind     localfs.FileType
	node     simnet.Addr
	fh       nfs.Handle
	physPath string
	pn       string // controlling placement name
	root     string // physical subtree root of the replicated hierarchy
	place    Place  // directories: resolved place for child operations
	cached   bool   // served from the name cache, not a fresh resolution
}

// DirEntry is one row of a virtual directory listing.
type DirEntry struct {
	Name string
	Type localfs.FileType
}

// Mount is the client view of the Kosha file system through one node's
// koshad, corresponding to the virtual mount point /kosha (Figure 1). All
// operations return the simulated cost including the interposition constant
// I, overlay lookups, and forwarded NFS RPCs. A Mount is safe for
// concurrent use by multiple goroutines.
type Mount struct {
	n *Node

	mu   sync.Mutex
	vft  map[VH]*ventry
	next VH

	rr        uint64                // round-robin cursor for replica reads
	readsFrom map[simnet.Addr]int64 // per-node read counter (observability)

	// Client-side metadata caches, modeling the kernel NFS client's
	// attribute cache and dnlc that the paper's overhead numbers rely on
	// (Section 6.1). Both serve hits for at most a TTL and are
	// write-through invalidated by every mutating op and by failover.
	now    func() time.Time // injectable clock for TTL tests
	metaMu sync.Mutex
	attrs  map[string]attrEntry // virtual path -> cached attributes
	dnlc   map[string]dnlcEntry // child virtual path -> resolved entry
}

// attrEntry is one attribute-cache row.
type attrEntry struct {
	attr localfs.Attr
	at   time.Time
}

// dnlcEntry is one name-cache row: the fully resolved child (node, handle,
// physical path) plus the attributes LOOKUP would have carried.
type dnlcEntry struct {
	ve   ventry
	attr localfs.Attr
	at   time.Time
}

// NewMount attaches a client to the node's koshad.
func (n *Node) NewMount() *Mount {
	m := &Mount{
		n:         n,
		vft:       make(map[VH]*ventry),
		next:      RootVH + 1,
		readsFrom: make(map[simnet.Addr]int64),
		now:       time.Now,
		attrs:     make(map[string]attrEntry),
		dnlc:      make(map[string]dnlcEntry),
	}
	m.vft[RootVH] = &ventry{
		vpath: "/",
		kind:  localfs.TypeDir,
		place: Place{VRoot: true, Store: "/"},
	}
	return m
}

// --- client-side metadata caches ---

func (m *Mount) cacheAttr(vpath string, a localfs.Attr) {
	if m.n.cfg.AttrCacheTTL <= 0 {
		return
	}
	m.metaMu.Lock()
	m.attrs[vpath] = attrEntry{attr: a, at: m.now()}
	m.metaMu.Unlock()
}

func (m *Mount) cachedAttr(vpath string) (localfs.Attr, bool) {
	ttl := m.n.cfg.AttrCacheTTL
	if ttl <= 0 {
		return localfs.Attr{}, false
	}
	m.metaMu.Lock()
	defer m.metaMu.Unlock()
	e, ok := m.attrs[vpath]
	if !ok {
		return localfs.Attr{}, false
	}
	if m.now().Sub(e.at) > ttl {
		delete(m.attrs, vpath)
		return localfs.Attr{}, false
	}
	return e.attr, true
}

func (m *Mount) invalAttr(vpath string) {
	m.metaMu.Lock()
	delete(m.attrs, vpath)
	m.metaMu.Unlock()
}

// dnlcPut caches a resolved child entry and its attributes.
func (m *Mount) dnlcPut(ve ventry, a localfs.Attr) {
	if m.n.cfg.NameCacheTTL > 0 {
		m.metaMu.Lock()
		m.dnlc[ve.vpath] = dnlcEntry{ve: ve, attr: a, at: m.now()}
		m.metaMu.Unlock()
	}
	m.cacheAttr(ve.vpath, a)
}

func (m *Mount) dnlcGet(vpath string) (ventry, localfs.Attr, bool) {
	ttl := m.n.cfg.NameCacheTTL
	if ttl <= 0 {
		return ventry{}, localfs.Attr{}, false
	}
	m.metaMu.Lock()
	defer m.metaMu.Unlock()
	e, ok := m.dnlc[vpath]
	if !ok {
		return ventry{}, localfs.Attr{}, false
	}
	if m.now().Sub(e.at) > ttl {
		delete(m.dnlc, vpath)
		return ventry{}, localfs.Attr{}, false
	}
	return e.ve, e.attr, true
}

// dropMetaUnder invalidates cached metadata for vpath and everything below
// it (rename/remove/failover relocate whole subtrees).
func (m *Mount) dropMetaUnder(vpath string) {
	prefix := strings.TrimSuffix(vpath, "/") + "/"
	m.metaMu.Lock()
	for p := range m.attrs {
		if p == vpath || strings.HasPrefix(p, prefix) {
			delete(m.attrs, p)
		}
	}
	for p := range m.dnlc {
		if p == vpath || strings.HasPrefix(p, prefix) {
			delete(m.dnlc, p)
		}
	}
	m.metaMu.Unlock()
}

// Root returns the mount's root virtual handle.
func (m *Mount) Root() VH { return RootVH }

// ErrBadHandle is returned for unknown virtual handles.
var ErrBadHandle = errors.New("kosha: unknown virtual handle")

func (m *Mount) entry(vh VH) (*ventry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	de, ok := m.vft[vh]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, vh)
	}
	return de, nil
}

func (m *Mount) insert(de *ventry) VH {
	m.mu.Lock()
	defer m.mu.Unlock()
	vh := m.next
	m.next++
	m.vft[vh] = de
	return vh
}

func (m *Mount) replace(vh VH, de *ventry) {
	m.mu.Lock()
	m.vft[vh] = de
	m.mu.Unlock()
}

// forget drops a virtual handle (e.g. after unlink). The root handle is
// permanent.
func (m *Mount) forget(vh VH) {
	if vh == RootVH {
		return
	}
	m.mu.Lock()
	delete(m.vft, vh)
	m.mu.Unlock()
}

// staleStore marks a resolution whose cached storage root no longer exists
// (the hierarchy was renamed or removed through another node); the caller
// drops its caches and re-resolves.
var staleStore = errors.New("kosha: cached storage root dangles")

// retryable reports whether an error warrants transparent failover:
// transport failures and stale handles re-resolve onto a replica (Section
// 4.4); ErrNotPrimary re-resolves after an ownership change.
func retryable(err error) bool {
	return errors.Is(err, simnet.ErrUnreachable) ||
		errors.Is(err, ErrNotPrimary) ||
		nfs.IsStatus(err, nfs.ErrStale)
}

// cacheSuspect reports whether an error could be the fault of a stale
// name-cache entry rather than of the operation itself: another client may
// have removed, renamed, or retyped the path since it was cached. Such a
// failure on a cached entry is retried once against a fresh resolution, the
// way the kernel NFS client retries after ESTALE.
func cacheSuspect(err error) bool {
	return nfs.IsStatus(err, nfs.ErrNoEnt) ||
		nfs.IsStatus(err, nfs.ErrNotDir) ||
		nfs.IsStatus(err, nfs.ErrIsDir)
}

// opCtx carries the observability context of one public mount operation: the
// op name, its trace (nil when tracing is disabled), and the wall-clock start
// when Config.WallClockStats selects wall time over simulated cost.
type opCtx struct {
	m     *Mount
	op    obs.OpCode
	tr    *obs.Trace
	start time.Time
}

// begin opens the observability context for one public operation.
func (m *Mount) begin(op obs.OpCode, vpath string) opCtx {
	o := opCtx{m: m, op: op, tr: m.n.tracer.Start(op.String(), vpath, string(m.n.addr))}
	if m.n.cfg.WallClockStats {
		o.start = time.Now()
	}
	return o
}

// done records the operation's latency sample and counters and publishes the
// trace. Under simnet the sample is the simulated cost; under a real
// transport koshad selects wall time via Config.WallClockStats.
func (o opCtx) done(cost simnet.Cost, err error) {
	n := o.m.n
	d := time.Duration(cost)
	if n.cfg.WallClockStats {
		d = time.Since(o.start)
	}
	n.opHists[o.op].Observe(d)
	n.opsTotal.Add(1)
	if err != nil {
		n.opErrors.Add(1)
	}
	if o.tr != nil {
		n.tracer.Finish(o.tr, d, err)
	}
}

// vpathOf returns the virtual path behind a handle for trace labels ("" when
// the handle is unknown; the operation itself surfaces the error).
func (m *Mount) vpathOf(vh VH) string {
	if !m.n.tracer.Enabled() {
		return ""
	}
	if de, err := m.entry(vh); err == nil {
		return de.vpath
	}
	return ""
}

// beginAt opens the observability context for an operation addressed by
// (directory handle, name); the trace label is only assembled when tracing
// is enabled, so disabled tracing costs no path allocation.
func (m *Mount) beginAt(op obs.OpCode, dir VH, name string) opCtx {
	if !m.n.tracer.Enabled() {
		return m.begin(op, "")
	}
	return m.begin(op, path.Join(m.vpathOf(dir), name))
}

// materialize builds a ventry for a virtual path by resolving placement and
// looking the path up on the storage node. It also returns the entry's
// attributes (LOOKUP carries them, as in NFS).
func (m *Mount) materialize(tr *obs.Trace, vpath string) (*ventry, localfs.Attr, simnet.Cost, error) {
	parts := SplitVirtual(vpath)
	if len(parts) == 0 {
		return &ventry{vpath: "/", kind: localfs.TypeDir, place: Place{VRoot: true, Store: "/"}},
			localfs.Attr{Ino: 1, Type: localfs.TypeDir, Mode: 0o755, Nlink: 2}, 0, nil
	}
	var total simnet.Cost

	place, cost, err := m.n.resolveDir(tr, parts)
	total = simnet.Seq(total, cost)
	switch {
	case err == nil:
		phys := place.PhysDir()
		storeComps := pathComponents(place.SubtreeRoot())
		fh, attr, idx, c, lerr := m.n.remoteLookupPathIdx(place.Node, phys)
		total = simnet.Seq(total, c)
		if nfs.IsStatus(lerr, nfs.ErrNoEnt) {
			if idx < storeComps {
				// The resolved storage root itself dangles: a stale cache
				// entry survived a rename/removal done elsewhere.
				lerr = staleStore
			} else {
				_, c2, perr := m.n.promote(place.Node, Track{PN: place.PN(), Root: place.SubtreeRoot()})
				total = simnet.Seq(total, c2)
				if perr == nil {
					fh, attr, idx, c, lerr = m.n.remoteLookupPathIdx(place.Node, phys)
					total = simnet.Seq(total, c)
					if nfs.IsStatus(lerr, nfs.ErrNoEnt) && idx < storeComps {
						lerr = staleStore
					}
				}
			}
		}
		if lerr != nil {
			return nil, localfs.Attr{}, total, lerr
		}
		tr.SetServedBy(string(place.Node))
		ve := &ventry{
			vpath:    JoinVirtual(parts),
			kind:     attr.Type,
			node:     place.Node,
			fh:       fh,
			physPath: phys,
			pn:       place.PN(),
			root:     place.SubtreeRoot(),
			place:    place,
		}
		m.cacheAttr(ve.vpath, attr)
		return ve, attr, total, nil

	case nfs.IsStatus(err, nfs.ErrNotDir):
		// The final component is a file or plain symlink at a depth the
		// resolver treated as a directory level; resolve the parent and
		// look the leaf up there.
		parent, cost, perr := m.n.resolveDir(tr, parts[:len(parts)-1])
		total = simnet.Seq(total, cost)
		if perr != nil {
			return nil, localfs.Attr{}, total, perr
		}
		name := parts[len(parts)-1]
		phys := path.Join(parent.PhysDir(), name)
		storeComps := pathComponents(parent.SubtreeRoot())
		fh, attr, idx, c, lerr := m.n.remoteLookupPathIdx(parent.Node, phys)
		total = simnet.Seq(total, c)
		if nfs.IsStatus(lerr, nfs.ErrNoEnt) && !parent.VRoot {
			if idx < storeComps {
				lerr = staleStore
			} else {
				_, c2, perr := m.n.promote(parent.Node, Track{PN: parent.PN(), Root: parent.SubtreeRoot()})
				total = simnet.Seq(total, c2)
				if perr == nil {
					fh, attr, idx, c, lerr = m.n.remoteLookupPathIdx(parent.Node, phys)
					total = simnet.Seq(total, c)
					if nfs.IsStatus(lerr, nfs.ErrNoEnt) && idx < storeComps {
						lerr = staleStore
					}
				}
			}
		}
		if lerr != nil {
			return nil, localfs.Attr{}, total, lerr
		}
		tr.SetServedBy(string(parent.Node))
		ve := &ventry{
			vpath:    JoinVirtual(parts),
			kind:     attr.Type,
			node:     parent.Node,
			fh:       fh,
			physPath: phys,
			pn:       parent.PN(),
			root:     parent.SubtreeRoot(),
			place:    parent,
		}
		m.cacheAttr(ve.vpath, attr)
		return ve, attr, total, nil

	default:
		return nil, localfs.Attr{}, total, err
	}
}

// materializeRetry is materialize with transparent failover: a retryable
// failure has already invalidated the caches naming the dead node (noteErr),
// so re-resolution routes onto a replica holder. One NoEnt retry with
// dropped caches covers stale resolver entries whose storage root moved
// (renames relocate storage by design).
func (m *Mount) materializeRetry(tr *obs.Trace, vpath string) (*ventry, localfs.Attr, simnet.Cost, error) {
	var total simnet.Cost
	staleRetried := false
	for attempt := 0; ; attempt++ {
		de, attr, c, err := m.materialize(tr, vpath)
		total = simnet.Seq(total, c)
		if err == nil || attempt >= 3 {
			return de, attr, total, err
		}
		if errors.Is(err, staleStore) {
			if staleRetried {
				return de, attr, total, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNoEnt}
			}
			staleRetried = true
			m.dropCachesUnder(vpath)
			continue
		}
		if !retryable(err) {
			return de, attr, total, err
		}
		m.dropCachesUnder(vpath)
	}
}

// withFailover runs fn against a ventry, transparently re-resolving and
// retrying on node failure, stale handles, or primary changes. The
// interposition constant I is charged once per operation. Each failover is
// recorded in the overlay event log, the failover latency histogram (the
// cost of re-resolving onto a replica), and the operation's trace.
func (m *Mount) withFailover(tr *obs.Trace, vh VH, fn func(de *ventry) (simnet.Cost, error)) (simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	de, err := m.entry(vh)
	if err != nil {
		return total, err
	}
	cacheRetried := false
	for attempt := 0; ; attempt++ {
		c, err := fn(de)
		total = simnet.Seq(total, c)
		if err == nil {
			// Deeper instrumentation (apply, replica reads, materialize)
			// records the precise server; otherwise the entry's node
			// served the final RPC.
			if tr != nil && tr.ServedBy == "" {
				tr.SetServedBy(string(de.node))
			}
			return total, nil
		}
		if attempt >= 3 {
			return total, err
		}
		failedOver := false
		switch {
		case retryable(err):
			// Drop state naming the failed node and re-resolve the path:
			// the overlay now routes the key to a node holding a replica.
			// A NotPrimary answer came from a live node — only the stale
			// resolution is dropped, not the node.
			if !errors.Is(err, ErrNotPrimary) {
				m.n.invalidateNode(de.node)
			}
			failedOver = true
		case de.cached && !cacheRetried && cacheSuspect(err):
			// The entry came from the name cache and the failure smells
			// like staleness; revalidate once against a fresh resolution.
			cacheRetried = true
		default:
			return total, err
		}
		m.dropCachesUnder(de.vpath)
		nde, _, c2, rerr := m.materialize(tr, de.vpath)
		total = simnet.Seq(total, c2)
		if failedOver {
			m.n.events.Add(obs.EvFailover, string(m.n.addr), de.vpath)
			m.n.reg.Observe("op."+obs.OpFailover, time.Duration(c2))
			tr.Failover()
		}
		if rerr != nil {
			return total, rerr
		}
		if failedOver && nde.root != "" {
			// Read-repair: the key now resolves to a (possibly freshly
			// promoted) replacement primary. Ask it to surface its replica
			// copy and reconcile versions against the surviving replica set
			// so the retried operation — and a later revival of the failed
			// node — sees converged state. If repair moved the subtree, the
			// handle just materialized is stale; resolve it again.
			changed, c3, perr := m.n.promote(nde.node, Track{PN: nde.pn, Root: nde.root})
			total = simnet.Seq(total, c3)
			if perr == nil && changed {
				m.dropCachesUnder(de.vpath)
				nde, _, c3, rerr = m.materialize(tr, de.vpath)
				total = simnet.Seq(total, c3)
				if rerr != nil {
					return total, rerr
				}
			}
		}
		m.replace(vh, nde)
		de = nde
	}
}

// dropCachesUnder invalidates resolver cache entries for a path and its
// ancestors (any of them may name the failed node), plus this mount's
// metadata caches for the path's subtree (handles and attributes cached
// below a failed or relocated directory are all suspect).
func (m *Mount) dropCachesUnder(vpath string) {
	parts := SplitVirtual(vpath)
	for i := 1; i <= len(parts); i++ {
		m.n.cacheDrop(JoinVirtual(parts[:i]))
	}
	m.dropMetaUnder(vpath)
}

// Lookup resolves name within the directory dir, returning a new virtual
// handle (Section 4.1.3). Below the distribution level the parent's real
// handle answers with a single forwarded LOOKUP; at distributed levels the
// resolver (hash + route + special links) locates the child's node.
func (m *Mount) Lookup(dir VH, name string) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.beginAt(obs.OpcLookup, dir, name)
	vh, attr, cost, err := m.lookup(o.tr, dir, name)
	o.done(cost, err)
	return vh, attr, cost, err
}

func (m *Mount) lookup(tr *obs.Trace, dir VH, name string) (VH, localfs.Attr, simnet.Cost, error) {
	de, err := m.entry(dir)
	if err != nil {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, err
	}
	if de.kind != localfs.TypeDir {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNotDir}
	}
	depth := len(SplitVirtual(de.vpath)) + 1
	if !de.place.VRoot && depth > m.n.cfg.DistributionLevel {
		// Name-cache hit: the child was resolved (or pre-warmed by
		// READDIRPLUS) within the TTL; no network at all. The entry must
		// belong to the same hierarchy incarnation as the parent handle in
		// use — re-created directories get fresh storage roots, so a root
		// mismatch exposes entries cached before the re-creation. A stale
		// hit that slips through self-heals: handle ops return
		// NFS3ERR_STALE and path ops NFS3ERR_NOENT, both of which the
		// failover path retries against a fresh resolution.
		if ve, a, ok := m.dnlcGet(path.Join(de.vpath, name)); ok &&
			ve.node == de.node && ve.root == de.root {
			ve.cached = true
			return m.insert(&ve), a, m.n.cfg.InterposeCost, nil
		}
		var out VH
		var attr localfs.Attr
		cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
			fh, a, c, err := m.n.nfsc.Lookup(de.node, de.fh, name)
			if err != nil {
				return c, err
			}
			attr = a
			childPlace := de.place
			childPlace.Rest = append(append([]string(nil), de.place.Rest...), name)
			ve := ventry{
				vpath:    path.Join(de.vpath, name),
				kind:     a.Type,
				node:     de.node,
				fh:       fh,
				physPath: path.Join(de.physPath, name),
				pn:       de.pn,
				root:     de.root,
				place:    childPlace,
			}
			m.dnlcPut(ve, a)
			out = m.insert(&ve)
			return c, nil
		})
		return out, attr, cost, err
	}

	total := m.n.cfg.InterposeCost
	child, attr, cost, err := m.materializeRetry(tr, path.Join(de.vpath, name))
	total = simnet.Seq(total, cost)
	if err != nil {
		return 0, localfs.Attr{}, total, err
	}
	return m.insert(child), attr, total, nil
}

// Getattr fetches attributes for a virtual handle. Within the attribute
// cache's TTL a hit costs only the interposition constant — no RPC — just
// as the kernel NFS client's acregmin/acdirmin window the paper assumes.
func (m *Mount) Getattr(vh VH) (localfs.Attr, simnet.Cost, error) {
	o := m.begin(obs.OpcGetattr, m.vpathOf(vh))
	attr, cost, err := m.getattr(o.tr, vh)
	o.done(cost, err)
	return attr, cost, err
}

func (m *Mount) getattr(tr *obs.Trace, vh VH) (localfs.Attr, simnet.Cost, error) {
	if vh == RootVH {
		return localfs.Attr{Ino: 1, Type: localfs.TypeDir, Mode: 0o755, Nlink: 2}, m.n.cfg.InterposeCost, nil
	}
	if de, err := m.entry(vh); err == nil {
		if a, ok := m.cachedAttr(de.vpath); ok {
			return a, m.n.cfg.InterposeCost, nil
		}
	}
	var attr localfs.Attr
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		a, c, err := m.n.nfsc.Getattr(de.node, de.fh)
		if err == nil {
			attr = a
			m.cacheAttr(de.vpath, a)
		}
		return c, err
	})
	return attr, cost, err
}

// Setattr updates attributes through the primary, which mirrors to replicas.
func (m *Mount) Setattr(vh VH, sa localfs.SetAttr) (localfs.Attr, simnet.Cost, error) {
	o := m.begin(obs.OpcSetattr, m.vpathOf(vh))
	attr, cost, err := m.setattr(o.tr, vh, sa)
	o.done(cost, err)
	return attr, cost, err
}

func (m *Mount) setattr(tr *obs.Trace, vh VH, sa localfs.SetAttr) (localfs.Attr, simnet.Cost, error) {
	var attr localfs.Attr
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		a, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSSetattr, Path: de.physPath, SetAttr: sa})
		if err == nil {
			attr = a
			m.invalAttr(de.vpath)
		}
		return c, err
	})
	return attr, cost, err
}

// Read returns up to count bytes of the file at offset. With
// Config.ReadFromReplicas enabled, reads rotate across the primary and its
// replica holders (the Section 4.2 optimization); any replica-side failure
// falls back to the primary path transparently.
func (m *Mount) Read(vh VH, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	o := m.begin(obs.OpcRead, m.vpathOf(vh))
	data, eof, cost, err := m.read(o.tr, vh, offset, count)
	o.done(cost, err)
	return data, eof, cost, err
}

func (m *Mount) read(tr *obs.Trace, vh VH, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	var data []byte
	var eof bool
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		if m.n.cfg.ReadFromReplicas && m.n.cfg.Replicas > 0 && de.kind == localfs.TypeRegular {
			if d, e, c, ok := m.readViaReplica(tr, de, offset, count); ok {
				data, eof = d, e
				return c, nil
			}
		}
		d, e, c, err := m.n.nfsc.Read(de.node, de.fh, offset, count)
		if err == nil {
			data, eof = d, e
			m.countRead(de.node)
			if de.node == m.n.addr {
				c = simnet.Seq(c, m.n.cfg.LoopbackXfer(len(d)))
			}
		}
		return c, err
	})
	return data, eof, cost, err
}

// readViaReplica attempts one read against a rotating replica holder;
// ok=false means the caller should use the primary.
func (m *Mount) readViaReplica(tr *obs.Trace, de *ventry, offset int64, count int) ([]byte, bool, simnet.Cost, bool) {
	reps, total, err := m.n.replicaSet(de.node, Key(de.pn), de.root)
	if err != nil || len(reps) == 0 {
		return nil, false, total, false
	}
	m.mu.Lock()
	idx := m.rr % uint64(len(reps)+1)
	m.rr++
	m.mu.Unlock()
	if idx == 0 {
		return nil, false, total, false // the primary's turn
	}
	rep := reps[idx-1]
	fh, _, c, err := m.n.remoteLookupPath(rep, RepPath(de.physPath))
	total = simnet.Seq(total, c)
	if err != nil {
		return nil, false, total, false
	}
	d, e, c, err := m.n.nfsc.Read(rep, fh, offset, count)
	total = simnet.Seq(total, c)
	if err != nil {
		return nil, false, total, false
	}
	m.countRead(rep)
	tr.SetServedBy(string(rep))
	if rep == m.n.addr {
		total = simnet.Seq(total, m.n.cfg.LoopbackXfer(len(d)))
	}
	return d, e, total, true
}

func (m *Mount) countRead(addr simnet.Addr) {
	m.mu.Lock()
	m.readsFrom[addr]++
	m.mu.Unlock()
}

// ReadSpread reports how many reads this mount served from each node,
// for observability and the replica-read ablation.
func (m *Mount) ReadSpread() map[simnet.Addr]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[simnet.Addr]int64, len(m.readsFrom))
	for k, v := range m.readsFrom {
		out[k] = v
	}
	return out
}

// Write stores data at offset through the primary, which synchronously
// mirrors the write to the K replicas (Section 4.2).
func (m *Mount) Write(vh VH, offset int64, data []byte) (int, simnet.Cost, error) {
	o := m.begin(obs.OpcWrite, m.vpathOf(vh))
	n, cost, err := m.write(o.tr, vh, offset, data)
	o.done(cost, err)
	return n, cost, err
}

func (m *Mount) write(tr *obs.Trace, vh VH, offset int64, data []byte) (int, simnet.Cost, error) {
	n := 0
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		_, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSWrite, Path: de.physPath, Offset: offset, Data: data})
		if err == nil {
			n = len(data)
			m.invalAttr(de.vpath)
			if de.node == m.n.addr {
				c = simnet.Seq(c, m.n.cfg.LoopbackXfer(len(data)))
			}
		}
		return c, err
	})
	return n, cost, err
}

// Create makes a regular file in dir (Section 4.1.4): the primary for the
// parent directory creates the primary replica and returns its handle.
func (m *Mount) Create(dir VH, name string, mode uint32, exclusive bool) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.beginAt(obs.OpcCreate, dir, name)
	vh, attr, cost, err := m.create(o.tr, dir, name, mode, exclusive)
	o.done(cost, err)
	return vh, attr, cost, err
}

func (m *Mount) create(tr *obs.Trace, dir VH, name string, mode uint32, exclusive bool) (VH, localfs.Attr, simnet.Cost, error) {
	var out VH
	var attr localfs.Attr
	if err := ValidName(name); err != nil {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, err
	}
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.place.VRoot {
			return 0, ErrRootOnlyDirs
		}
		if de.kind != localfs.TypeDir {
			return 0, &nfs.Error{Proc: nfs.ProcCreate, Status: nfs.ErrNotDir}
		}
		phys := path.Join(de.physPath, name)
		a, fh, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSCreate, Path: phys, Mode: mode, Excl: exclusive})
		if err != nil {
			return c, err
		}
		attr = a
		m.dropMetaUnder(path.Join(de.vpath, name))
		m.invalAttr(de.vpath)
		out = m.insert(&ventry{
			vpath:    path.Join(de.vpath, name),
			kind:     localfs.TypeRegular,
			node:     de.node,
			fh:       fh,
			physPath: phys,
			pn:       de.pn,
			root:     de.root,
			place:    de.place,
		})
		return c, nil
	})
	return out, attr, cost, err
}

// Symlink creates a user symbolic link in dir. Targets beginning with
// Kosha's reserved link marker are rejected to keep user symlinks
// distinguishable from placement links.
func (m *Mount) Symlink(dir VH, name, target string) (VH, simnet.Cost, error) {
	o := m.beginAt(obs.OpcSymlink, dir, name)
	vh, cost, err := m.symlink(o.tr, dir, name, target)
	o.done(cost, err)
	return vh, cost, err
}

func (m *Mount) symlink(tr *obs.Trace, dir VH, name, target string) (VH, simnet.Cost, error) {
	if err := ValidName(name); err != nil {
		return 0, m.n.cfg.InterposeCost, err
	}
	if _, _, ok := ParseLinkTarget(target); ok {
		return 0, m.n.cfg.InterposeCost, fmt.Errorf("kosha: symlink target begins with a reserved marker")
	}
	var out VH
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.place.VRoot {
			return 0, ErrRootOnlyDirs
		}
		phys := path.Join(de.physPath, name)
		_, fh, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSSymlink, Path: phys, Target: target})
		if err != nil {
			return c, err
		}
		m.dropMetaUnder(path.Join(de.vpath, name))
		m.invalAttr(de.vpath)
		out = m.insert(&ventry{
			vpath:    path.Join(de.vpath, name),
			kind:     localfs.TypeSymlink,
			node:     de.node,
			fh:       fh,
			physPath: phys,
			pn:       de.pn,
			root:     de.root,
			place:    de.place,
		})
		return c, nil
	})
	return out, cost, err
}

// Readlink reads a user symlink's target.
func (m *Mount) Readlink(vh VH) (string, simnet.Cost, error) {
	o := m.begin(obs.OpcReadlink, m.vpathOf(vh))
	target, cost, err := m.readlink(o.tr, vh)
	o.done(cost, err)
	return target, cost, err
}

func (m *Mount) readlink(tr *obs.Trace, vh VH) (string, simnet.Cost, error) {
	var target string
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		t, c, err := m.n.nfsc.Readlink(de.node, de.fh)
		if err == nil {
			target = t
		}
		return c, err
	})
	return target, cost, err
}

// Mkdir creates a directory. Directories within the distribution level are
// hashed to their own node, with capacity redirection (Sections 3.2-3.3);
// deeper directories stay on the parent's node.
func (m *Mount) Mkdir(dir VH, name string, mode uint32) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.beginAt(obs.OpcMkdir, dir, name)
	vh, attr, cost, err := m.mkdir(o.tr, dir, name, mode)
	o.done(cost, err)
	return vh, attr, cost, err
}

func (m *Mount) mkdir(tr *obs.Trace, dir VH, name string, mode uint32) (VH, localfs.Attr, simnet.Cost, error) {
	if err := ValidName(name); err != nil {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, err
	}
	var out VH
	var attr localfs.Attr
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.kind != localfs.TypeDir {
			return 0, &nfs.Error{Proc: nfs.ProcMkdir, Status: nfs.ErrNotDir}
		}
		depth := len(SplitVirtual(de.vpath)) + 1
		if depth <= m.n.cfg.DistributionLevel || de.place.VRoot {
			vh, a, c, err := m.mkdirDistributed(tr, de, name, mode)
			if err != nil {
				return c, err
			}
			out, attr = vh, a
			return c, nil
		}
		phys := path.Join(de.physPath, name)
		a, fh, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSMkdir, Path: phys, Mode: mode})
		if err != nil {
			return c, err
		}
		attr = a
		m.dropMetaUnder(path.Join(de.vpath, name))
		m.invalAttr(de.vpath)
		childPlace := de.place
		childPlace.Rest = append(append([]string(nil), de.place.Rest...), name)
		out = m.insert(&ventry{
			vpath:    path.Join(de.vpath, name),
			kind:     localfs.TypeDir,
			node:     de.node,
			fh:       fh,
			physPath: phys,
			pn:       de.pn,
			root:     de.root,
			place:    childPlace,
		})
		return c, nil
	})
	return out, attr, cost, err
}

// mkdirDistributed creates a directory at a distributed level: hash the
// name, route, redirect with salts while the target is above the
// utilization limit, create the hierarchy on the chosen node, and place a
// special link in the parent when needed (Section 3.3).
func (m *Mount) mkdirDistributed(tr *obs.Trace, parent *ventry, name string, mode uint32) (VH, localfs.Attr, simnet.Cost, error) {
	n := m.n
	var total simnet.Cost

	// Where resolution will probe for this name (and where a special link
	// would live): the original hash target for level-1 directories, the
	// parent's node otherwise.
	var linkNode simnet.Addr
	var linkDir string
	var linkKey = Key(name)
	var linkTrack Track
	if parent.place.VRoot {
		res, c, err := n.route(tr, Key(name))
		total = simnet.Seq(total, c)
		if err != nil {
			return 0, localfs.Attr{}, total, err
		}
		linkNode, linkDir = res.Node.Addr, "/"
		linkTrack = Track{PN: name, Link: path.Join("/", name)}
	} else {
		linkNode, linkDir = parent.node, parent.physPath
		linkKey = Key(parent.pn)
		linkTrack = Track{PN: parent.pn, Root: parent.root}
	}

	// Existence check at the probe location.
	if _, _, c, err := n.remoteLookupPath(linkNode, path.Join(linkDir, name)); err == nil {
		return 0, localfs.Attr{}, simnet.Seq(total, c), &nfs.Error{Proc: nfs.ProcMkdir, Status: nfs.ErrExist}
	} else {
		total = simnet.Seq(total, c)
		if !nfs.IsStatus(err, nfs.ErrNoEnt) {
			return 0, localfs.Attr{}, total, err
		}
	}

	// Choose the placement name and node, redirecting on full targets:
	// "the redirection process repeats till a node with enough disk space
	// is found, or a pre-specified number of retries is exhausted".
	var pn string
	var target simnet.Addr
	chosen := false
	for attempt := 0; attempt <= n.cfg.RedirectAttempts; attempt++ {
		pn = Salted(name, attempt)
		res, c, err := n.route(tr, Key(pn))
		total = simnet.Seq(total, c)
		if err != nil {
			return 0, localfs.Attr{}, total, err
		}
		target = res.Node.Addr
		st, c, err := n.remoteFSStat(target)
		total = simnet.Seq(total, c)
		if err != nil {
			continue
		}
		if st.TotalBytes == 0 || float64(st.UsedBytes)/float64(st.TotalBytes) < n.cfg.UtilizationLimit {
			chosen = true
			break
		}
	}
	if !chosen {
		return 0, localfs.Attr{}, total, &nfs.Error{Proc: nfs.ProcMkdir, Status: nfs.ErrNoSpc}
	}

	// An unsalted level-1 home sits at its own hash target under its plain
	// name and needs no link; every other distributed directory gets a
	// fresh, unique storage root behind a special link, so a later rename
	// or re-creation can never alias its storage (see MakeLinkTarget).
	needLink := !(parent.place.VRoot && pn == name)
	var subRoot string
	if needLink {
		subRoot = n.newStoreRoot(pn)
	} else {
		subRoot = "/" + pn
	}

	// Create the subtree root on the chosen node.
	attr, fh, c, err := n.apply(tr, target, Key(pn), Track{PN: pn, Root: subRoot},
		FSOp{Kind: FSMkdirAll, Path: subRoot, Mode: mode})
	total = simnet.Seq(total, c)
	if err != nil {
		return 0, localfs.Attr{}, total, err
	}

	if needLink {
		_, _, c, err := n.apply(tr, linkNode, linkKey, linkTrack,
			FSOp{Kind: FSSymlink, Path: path.Join(linkDir, name), Target: MakeLinkTarget(pn, subRoot)})
		total = simnet.Seq(total, c)
		if err != nil {
			return 0, localfs.Attr{}, total, err
		}
	}

	place := Place{Node: target, Name: pn, Store: subRoot}
	vpath := path.Join(parent.vpath, name)
	n.cachePut(vpath, place)
	vh := m.insert(&ventry{
		vpath:    vpath,
		kind:     localfs.TypeDir,
		node:     target,
		fh:       fh,
		physPath: subRoot,
		pn:       pn,
		root:     subRoot,
		place:    place,
	})
	return vh, attr, total, nil
}

// Readdir lists a virtual directory: physical entries minus Kosha-internal
// names, with special links reported as the directories they stand for
// (Section 3.3: the link's name "helps Kosha list the directory contents of
// the parent directory"). One READDIRPLUS reply carries every entry's
// handle, attributes, and symlink target, so classifying special links
// needs no per-entry READLINK, and below the distribution level the reply
// pre-warms the name and attribute caches: a following stat-all-entries
// sweep issues no RPCs at all (the N+1 round trips collapse into 1).
func (m *Mount) Readdir(dir VH) ([]DirEntry, simnet.Cost, error) {
	o := m.begin(obs.OpcReaddir, m.vpathOf(dir))
	ents, cost, err := m.readdir(o.tr, dir)
	o.done(cost, err)
	return ents, cost, err
}

func (m *Mount) readdir(tr *obs.Trace, dir VH) ([]DirEntry, simnet.Cost, error) {
	de, err := m.entry(dir)
	if err != nil {
		return nil, m.n.cfg.InterposeCost, err
	}
	if de.place.VRoot {
		return m.readdirRoot(tr)
	}
	var out []DirEntry
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		ents, c, err := m.n.nfsc.ReaddirPlusAll(de.node, de.fh, 256)
		if err != nil {
			return c, err
		}
		// Children of a sub-distribution-level directory live on the
		// parent's node and their handles came back in the reply, so each
		// is a complete lookup result worth caching. Distributed levels
		// resolve through the overlay instead and are left alone.
		prewarm := !de.place.VRoot && len(SplitVirtual(de.vpath))+1 > m.n.cfg.DistributionLevel
		out = out[:0]
		for _, e := range ents {
			if Hidden(e.Name) {
				continue
			}
			if e.Type == localfs.TypeSymlink {
				if _, _, ok := ParseLinkTarget(e.SymTarget); ok {
					// Special placement link: a directory on another node.
					out = append(out, DirEntry{Name: e.Name, Type: localfs.TypeDir})
					continue
				}
			}
			out = append(out, DirEntry{Name: e.Name, Type: e.Type})
			if prewarm {
				childPlace := de.place
				childPlace.Rest = append(append([]string(nil), de.place.Rest...), e.Name)
				m.dnlcPut(ventry{
					vpath:    path.Join(de.vpath, e.Name),
					kind:     e.Type,
					node:     de.node,
					fh:       e.FH,
					physPath: path.Join(de.physPath, e.Name),
					pn:       de.pn,
					root:     de.root,
					place:    childPlace,
				}, e.Attr)
			}
		}
		return c, nil
	})
	return out, cost, err
}

// readdirRoot lists the virtual root: "the /kosha/$USER directory actually
// corresponds to the union of the /kosha_store/$USER directories on all
// nodes" (Section 3) — the root listing is the union of store roots.
func (m *Mount) readdirRoot(tr *obs.Trace) ([]DirEntry, simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	seen := make(map[string]localfs.FileType)
	nodes := []simnet.Addr{m.n.addr}
	for _, p := range m.n.overlay.Known() {
		nodes = append(nodes, p.Addr)
	}
	for _, addr := range nodes {
		var ents []nfs.DirEntry
		ok := false
		for attempt := 0; attempt < 2; attempt++ {
			rootH, c, err := m.n.rootHandle(addr)
			total = simnet.Seq(total, c)
			if err != nil {
				break
			}
			ents, c, err = m.n.nfsc.ReaddirAll(addr, rootH, 256)
			total = simnet.Seq(total, c)
			if err != nil {
				// A cached handle for a node that crashed and rejoined is
				// stale; drop it and retry once so the revived node's store
				// still contributes to the union.
				if nfs.IsStatus(err, nfs.ErrStale) && attempt == 0 {
					m.n.dropRootHandle(addr)
					continue
				}
				break
			}
			ok = true
			break
		}
		if !ok {
			continue
		}
		for _, e := range ents {
			if Hidden(e.Name) {
				continue
			}
			if _, dup := seen[e.Name]; dup {
				continue
			}
			// Root entries are directories (real or via special link).
			seen[e.Name] = localfs.TypeDir
		}
	}
	// The union is advisory: a node that fell out of a key's replica set
	// can still hold a stale copy of a deleted directory, so each name is
	// validated against authoritative resolution before it is listed.
	out := make([]DirEntry, 0, len(seen))
	for name, typ := range seen {
		if _, _, c, err := m.materialize(tr, "/"+name); err != nil {
			total = simnet.Seq(total, c)
			continue
		} else {
			total = simnet.Seq(total, c)
		}
		out = append(out, DirEntry{Name: name, Type: typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, total, nil
}

// Remove unlinks a file or user symlink (Section 4.1.5): the RPC is
// forwarded to the primary, which removes all replica instances.
func (m *Mount) Remove(dir VH, name string) (simnet.Cost, error) {
	o := m.beginAt(obs.OpcRemove, dir, name)
	cost, err := m.remove(o.tr, dir, name)
	o.done(cost, err)
	return cost, err
}

func (m *Mount) remove(tr *obs.Trace, dir VH, name string) (simnet.Cost, error) {
	return m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.place.VRoot {
			return 0, &nfs.Error{Proc: nfs.ProcRemove, Status: nfs.ErrIsDir}
		}
		phys := path.Join(de.physPath, name)
		_, attr, c, err := m.n.remoteLookupPath(de.node, phys)
		if err != nil {
			return c, err
		}
		if attr.Type == localfs.TypeDir {
			return c, &nfs.Error{Proc: nfs.ProcRemove, Status: nfs.ErrIsDir}
		}
		if attr.Type == localfs.TypeSymlink {
			target, c2, err := m.n.readLink(de.node, phys)
			c = simnet.Seq(c, c2)
			if err == nil {
				if _, _, ok := ParseLinkTarget(target); ok {
					return c, &nfs.Error{Proc: nfs.ProcRemove, Status: nfs.ErrIsDir}
				}
			}
		}
		_, _, c2, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSRemove, Path: phys})
		if err == nil {
			m.dropMetaUnder(path.Join(de.vpath, name))
			m.invalAttr(de.vpath)
		}
		return simnet.Seq(c, c2), err
	})
}

// Rmdir removes an empty directory, pruning scaffolding and special links
// for distributed directories (Section 4.1.5).
func (m *Mount) Rmdir(dir VH, name string) (simnet.Cost, error) {
	o := m.beginAt(obs.OpcRmdir, dir, name)
	cost, err := m.rmdir(o.tr, dir, name)
	o.done(cost, err)
	return cost, err
}

func (m *Mount) rmdir(tr *obs.Trace, dir VH, name string) (simnet.Cost, error) {
	return m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		depth := len(SplitVirtual(de.vpath)) + 1
		if depth <= m.n.cfg.DistributionLevel || de.place.VRoot {
			return m.rmdirDistributed(tr, de, name)
		}
		phys := path.Join(de.physPath, name)
		_, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSRmdir, Path: phys})
		if err == nil {
			m.dropMetaUnder(path.Join(de.vpath, name))
			m.invalAttr(de.vpath)
		}
		return c, err
	})
}

func (m *Mount) rmdirDistributed(tr *obs.Trace, parent *ventry, name string) (simnet.Cost, error) {
	n := m.n
	var total simnet.Cost
	vpath := path.Join(parent.vpath, name)

	// Locate the child and verify virtual emptiness.
	child, _, c, err := m.materialize(tr, vpath)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	if child.kind != localfs.TypeDir {
		return total, &nfs.Error{Proc: nfs.ProcRmdir, Status: nfs.ErrNotDir}
	}
	ents, c, err := n.nfsc.ReaddirAll(child.node, child.fh, 256)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	for _, e := range ents {
		if !Hidden(e.Name) {
			return total, &nfs.Error{Proc: nfs.ProcRmdir, Status: nfs.ErrNotEmpty}
		}
	}

	// Remove the hierarchy on its node (and replicas), pruning empty
	// scaffolding above it.
	_, _, c, err = n.apply(tr, child.node, Key(child.pn), Track{PN: child.pn, Root: child.root},
		FSOp{Kind: FSRemoveAll, Path: child.root, Prune: true})
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}

	// Remove the special link from the parent, if one exists.
	var linkNode simnet.Addr
	var linkDir string
	linkKey := Key(name)
	var linkTrack Track
	if parent.place.VRoot {
		res, c, rerr := n.route(tr, Key(name))
		total = simnet.Seq(total, c)
		if rerr != nil {
			return total, rerr
		}
		linkNode, linkDir = res.Node.Addr, "/"
		linkTrack = Track{PN: name, Link: path.Join("/", name)}
	} else {
		linkNode, linkDir = parent.node, parent.physPath
		linkKey = Key(parent.pn)
		linkTrack = Track{PN: parent.pn, Root: parent.root}
	}
	if !(parent.place.VRoot && child.root == "/"+name) {
		linkPath := path.Join(linkDir, name)
		if _, attr, c, lerr := n.remoteLookupPath(linkNode, linkPath); lerr == nil && attr.Type == localfs.TypeSymlink {
			total = simnet.Seq(total, c)
			_, _, c2, derr := n.apply(tr, linkNode, linkKey, linkTrack, FSOp{Kind: FSRemove, Path: linkPath})
			total = simnet.Seq(total, c2)
			if derr != nil {
				return total, derr
			}
		} else {
			total = simnet.Seq(total, c)
		}
	}
	n.cacheDrop(vpath)
	m.dropMetaUnder(vpath)
	m.invalAttr(parent.vpath)
	return total, nil
}

// Rename renames an entry (Section 4.1.4). Renames within one stored
// hierarchy are a single forwarded NFS rename (mirrored to replicas).
// Renaming a distributed directory, or across hierarchies, is "equivalent
// to a copy to a new location followed by a delete of the old location".
func (m *Mount) Rename(srcDir VH, srcName string, dstDir VH, dstName string) (simnet.Cost, error) {
	o := m.beginAt(obs.OpcRename, srcDir, srcName)
	cost, err := m.rename(o.tr, srcDir, srcName, dstDir, dstName)
	o.done(cost, err)
	return cost, err
}

func (m *Mount) rename(tr *obs.Trace, srcDir VH, srcName string, dstDir VH, dstName string) (simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	if err := ValidName(dstName); err != nil {
		return total, err
	}
	sde, err := m.entry(srcDir)
	if err != nil {
		return total, err
	}
	dde, err := m.entry(dstDir)
	if err != nil {
		return total, err
	}
	srcDepth := len(SplitVirtual(sde.vpath)) + 1
	srcDistributed := srcDepth <= m.n.cfg.DistributionLevel

	if !srcDistributed && sde.node == dde.node && sde.root == dde.root {
		c, err := m.withFailover(tr, srcDir, func(de *ventry) (simnet.Cost, error) {
			_, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
				FSOp{
					Kind:  FSRename,
					Path:  path.Join(sde.physPath, srcName),
					Path2: path.Join(dde.physPath, dstName),
				})
			return c, err
		})
		m.dropCachesUnder(path.Join(sde.vpath, srcName))
		m.dropCachesUnder(path.Join(dde.vpath, dstName))
		m.invalAttr(sde.vpath)
		m.invalAttr(dde.vpath)
		return simnet.Seq(total, c), err
	}

	// Cheap rename of a distributed directory within the same parent
	// (Section 4.1.4): "the rename is achieved by renaming the link ...
	// The target of the link needs not be changed" — the subtree stays
	// where its placement name hashes; only the name users see moves.
	if srcDistributed && sde.vpath == dde.vpath {
		c, ok, err := m.renameDistributedLink(tr, sde, srcName, dstName)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		if ok {
			m.dropCachesUnder(path.Join(sde.vpath, srcName))
			m.dropCachesUnder(path.Join(sde.vpath, dstName))
			return total, nil
		}
	}

	// Copy-then-delete across hierarchies or for unredirected level-1
	// directories, whose placement is their visible name ("renaming of
	// distributed subdirectories ... is equivalent to a copy ... followed
	// by a delete").
	c, err := m.copyTree(srcDir, srcName, dstDir, dstName)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	srcVH, _, c, err := m.Lookup(srcDir, srcName)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	sattr, c, err := m.Getattr(srcVH)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	if sattr.Type == localfs.TypeDir {
		c, err = m.RemoveAllPath(path.Join(sde.vpath, srcName))
	} else {
		c, err = m.Remove(srcDir, srcName)
	}
	total = simnet.Seq(total, c)
	m.forget(srcVH)
	return total, err
}

// renameDistributedLink renames a distributed directory cheaply (Section
// 4.1.4): its storage relocates LOCALLY on its node to a fresh root (the
// placement name — and hence the node — is unchanged, so no data crosses
// the network) and the special link is rewritten under the new name.
// ok=false means the cheap path does not apply (an unredirected level-1
// home, whose placement IS its name) and the caller must copy-and-delete.
func (m *Mount) renameDistributedLink(tr *obs.Trace, parent *ventry, srcName, dstName string) (simnet.Cost, bool, error) {
	n := m.n
	var total simnet.Cost
	child, _, c, err := m.materialize(tr, path.Join(parent.vpath, srcName))
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	if child.kind != localfs.TypeDir {
		return total, false, nil
	}
	// Destination must not exist.
	if _, _, c, err := m.materialize(tr, path.Join(parent.vpath, dstName)); err == nil {
		return simnet.Seq(total, c), false, &nfs.Error{Proc: nfs.ProcRename, Status: nfs.ErrExist}
	} else {
		total = simnet.Seq(total, c)
		if !nfs.IsStatus(err, nfs.ErrNoEnt) && !nfs.IsStatus(err, nfs.ErrNotDir) {
			return total, false, err
		}
	}

	if parent.place.VRoot && child.root == "/"+srcName {
		// Unredirected level-1 home: no link exists; placement is the
		// visible name, so a rename must move the data (copy + delete).
		return total, false, nil
	}

	// 1. Relocate the hierarchy to a fresh storage root on its own node —
	// a local rename, no data crosses the network. Stale resolver caches
	// for the old virtual name now dangle instead of aliasing the
	// renamed directory.
	newRoot := n.newStoreRoot(child.pn)
	_, _, c, err = n.apply(tr, child.node, Key(child.pn),
		Track{PN: child.pn, Root: newRoot},
		FSOp{Kind: FSRename, Path: child.root, Path2: newRoot})
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	target := MakeLinkTarget(child.pn, newRoot)

	// 2. Replace the link: remove the old name, create the new one.
	if !parent.place.VRoot {
		pt := Track{PN: parent.pn, Root: parent.root}
		if _, _, c, err := n.apply(tr, parent.node, Key(parent.pn), pt,
			FSOp{Kind: FSRemove, Path: path.Join(parent.physPath, srcName)}); err != nil {
			return simnet.Seq(total, c), false, err
		} else {
			total = simnet.Seq(total, c)
		}
		_, _, c, err := n.apply(tr, parent.node, Key(parent.pn), pt,
			FSOp{Kind: FSSymlink, Path: path.Join(parent.physPath, dstName), Target: target})
		total = simnet.Seq(total, c)
		return total, err == nil, err
	}

	// Level 1: the link moves between the old and new names' hash targets.
	newRes, c, err := n.route(tr, Key(dstName))
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	_, _, c, err = n.apply(tr, newRes.Node.Addr, Key(dstName),
		Track{PN: dstName, Link: path.Join("/", dstName)},
		FSOp{Kind: FSSymlink, Path: path.Join("/", dstName), Target: target})
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	oldRes, c, err := n.route(tr, Key(srcName))
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	_, _, c, err = n.apply(tr, oldRes.Node.Addr, Key(srcName),
		Track{PN: srcName, Link: path.Join("/", srcName)},
		FSOp{Kind: FSRemove, Path: path.Join("/", srcName)})
	total = simnet.Seq(total, c)
	return total, err == nil, err
}

// copyTree recursively copies srcDir/srcName to dstDir/dstName via client
// operations.
func (m *Mount) copyTree(srcDir VH, srcName string, dstDir VH, dstName string) (simnet.Cost, error) {
	var total simnet.Cost
	srcVH, sattr, c, err := m.Lookup(srcDir, srcName)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	defer m.forget(srcVH)
	switch sattr.Type {
	case localfs.TypeRegular:
		dstVH, _, c, err := m.Create(dstDir, dstName, sattr.Mode, false)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		defer m.forget(dstVH)
		const chunk = 1 << 20
		for off := int64(0); ; {
			data, eof, c, err := m.Read(srcVH, off, chunk)
			total = simnet.Seq(total, c)
			if err != nil {
				return total, err
			}
			if len(data) > 0 {
				_, c, err = m.Write(dstVH, off, data)
				total = simnet.Seq(total, c)
				if err != nil {
					return total, err
				}
				off += int64(len(data))
			}
			if eof {
				return total, nil
			}
		}
	case localfs.TypeSymlink:
		target, c, err := m.Readlink(srcVH)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		vh, c, err := m.Symlink(dstDir, dstName, target)
		total = simnet.Seq(total, c)
		m.forget(vh)
		return total, err
	case localfs.TypeDir:
		dstVH, _, c, err := m.Mkdir(dstDir, dstName, sattr.Mode)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		defer m.forget(dstVH)
		ents, c, err := m.Readdir(srcVH)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		for _, e := range ents {
			c, err := m.copyTree(srcVH, e.Name, dstVH, e.Name)
			total = simnet.Seq(total, c)
			if err != nil {
				return total, err
			}
		}
		return total, nil
	default:
		return total, &nfs.Error{Proc: nfs.ProcRename, Status: nfs.ErrInval}
	}
}

// --- path-level conveniences for applications and experiments ---

// LookupPath resolves a whole virtual path to a handle.
func (m *Mount) LookupPath(vpath string) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.begin(obs.OpcLookup, vpath)
	total := m.n.cfg.InterposeCost
	de, attr, cost, err := m.materializeRetry(o.tr, vpath)
	total = simnet.Seq(total, cost)
	if err != nil {
		o.done(total, err)
		return 0, localfs.Attr{}, total, err
	}
	o.done(total, nil)
	if de.place.VRoot {
		return RootVH, attr, total, nil
	}
	return m.insert(de), attr, total, nil
}

// dropMetaForPath invalidates this mount's metadata caches for a path's
// whole top-level subtree plus resolver entries along the path — the
// recovery hammer the path helpers swing before redriving after a failure
// that implicates cached state.
func (m *Mount) dropMetaForPath(vpath string) {
	m.dropCachesUnder(vpath)
	if parts := SplitVirtual(vpath); len(parts) > 0 {
		m.dropMetaUnder(JoinVirtual(parts[:1]))
	}
}

// MkdirAll creates a directory path and any missing ancestors. A NOENT on
// the way can mean a name-cache entry went stale mid-walk (another client
// removed or renamed a component); the walk redrives once with fresh
// resolutions before giving up.
func (m *Mount) MkdirAll(vpath string) (VH, simnet.Cost, error) {
	vh, total, err := m.mkdirAllOnce(vpath)
	if err != nil && cacheSuspect(err) {
		m.dropMetaForPath(vpath)
		vh2, c, err2 := m.mkdirAllOnce(vpath)
		return vh2, simnet.Seq(total, c), err2
	}
	return vh, total, err
}

func (m *Mount) mkdirAllOnce(vpath string) (VH, simnet.Cost, error) {
	parts := SplitVirtual(vpath)
	var total simnet.Cost
	cur := m.Root()
	for i, name := range parts {
		next, _, c, err := m.Lookup(cur, name)
		total = simnet.Seq(total, c)
		if err != nil {
			if !nfs.IsStatus(err, nfs.ErrNoEnt) {
				return 0, total, err
			}
			next, _, c, err = m.Mkdir(cur, name, 0o755)
			total = simnet.Seq(total, c)
			if err != nil {
				return 0, total, err
			}
		}
		if i > 0 && cur != m.Root() {
			m.forget(cur)
		}
		cur = next
	}
	return cur, total, nil
}

// WriteFile creates (or truncates) a file at a virtual path and writes
// data. Like MkdirAll, it redrives once on a staleness-shaped failure.
func (m *Mount) WriteFile(vpath string, data []byte) (simnet.Cost, error) {
	total, err := m.writeFileOnce(vpath, data)
	if err != nil && cacheSuspect(err) {
		m.dropMetaForPath(vpath)
		c, err2 := m.writeFileOnce(vpath, data)
		return simnet.Seq(total, c), err2
	}
	return total, err
}

func (m *Mount) writeFileOnce(vpath string, data []byte) (simnet.Cost, error) {
	dir, base := path.Split(path.Clean("/" + vpath))
	dirVH, total, err := m.MkdirAll(dir)
	if err != nil {
		return total, err
	}
	fvh, _, c, err := m.Create(dirVH, base, 0o644, false)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	defer m.forget(fvh)
	_, c, err = m.Write(fvh, 0, data)
	return simnet.Seq(total, c), err
}

// ReadFile reads a whole file at a virtual path. It reads to EOF rather
// than trusting the looked-up size, so a concurrent append through another
// node can never truncate the result.
func (m *Mount) ReadFile(vpath string) ([]byte, simnet.Cost, error) {
	vh, _, total, err := m.LookupPath(vpath)
	if err != nil {
		return nil, total, err
	}
	defer m.forget(vh)
	var data []byte
	const chunk = 1 << 20
	for {
		d, eof, c, err := m.Read(vh, int64(len(data)), chunk)
		total = simnet.Seq(total, c)
		if err != nil {
			return nil, total, err
		}
		data = append(data, d...)
		if eof || len(d) == 0 {
			return data, total, nil
		}
	}
}

// RemoveAllPath recursively removes a virtual subtree.
func (m *Mount) RemoveAllPath(vpath string) (simnet.Cost, error) {
	parts := SplitVirtual(vpath)
	if len(parts) == 0 {
		return 0, &nfs.Error{Proc: nfs.ProcRmdir, Status: nfs.ErrInval}
	}
	parentVH, _, total, err := m.LookupPath(JoinVirtual(parts[:len(parts)-1]))
	if err != nil {
		return total, err
	}
	defer m.forget(parentVH)
	c, err := m.removeAllIn(parentVH, parts[len(parts)-1])
	return simnet.Seq(total, c), err
}

// removeAllIn removes dir/name recursively. NOENT at any step means
// another client (or a stale cache entry standing in for one) already
// removed that piece — the goal state, so it counts as success.
func (m *Mount) removeAllIn(dir VH, name string) (simnet.Cost, error) {
	vh, attr, total, err := m.Lookup(dir, name)
	if err != nil {
		if nfs.IsStatus(err, nfs.ErrNoEnt) {
			return total, nil
		}
		return total, err
	}
	if attr.Type != localfs.TypeDir {
		m.forget(vh)
		c, err := m.Remove(dir, name)
		if nfs.IsStatus(err, nfs.ErrNoEnt) {
			err = nil
		}
		return simnet.Seq(total, c), err
	}
	ents, c, err := m.Readdir(vh)
	total = simnet.Seq(total, c)
	if err != nil {
		m.forget(vh)
		if nfs.IsStatus(err, nfs.ErrNoEnt) {
			return total, nil
		}
		return total, err
	}
	for _, e := range ents {
		c, err := m.removeAllIn(vh, e.Name)
		total = simnet.Seq(total, c)
		if err != nil {
			m.forget(vh)
			return total, err
		}
	}
	m.forget(vh)
	c, err = m.Rmdir(dir, name)
	if nfs.IsStatus(err, nfs.ErrNoEnt) {
		err = nil
	}
	return simnet.Seq(total, c), err
}

// ClusterStat aggregates contributed-space accounting across every node
// this mount's koshad knows about — the "single large storage" view the
// paper's introduction promises (unused desktop space harvested into one
// shared file system).
type ClusterStat struct {
	Nodes      int
	TotalBytes int64 // sum of contributed capacities (0 entries = unlimited)
	UsedBytes  int64
	Files      int64 // file copies stored, replicas included
	Unlimited  int   // nodes contributing without a cap
}

// Statfs sums FSSTAT over the local node and every known peer.
func (m *Mount) Statfs() (ClusterStat, simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	var out ClusterStat
	nodes := []simnet.Addr{m.n.addr}
	for _, p := range m.n.overlay.Known() {
		nodes = append(nodes, p.Addr)
	}
	for _, addr := range nodes {
		st, c, err := m.n.remoteFSStat(addr)
		total = simnet.Seq(total, c)
		if err != nil {
			continue
		}
		out.Nodes++
		out.UsedBytes += st.UsedBytes
		out.Files += st.Files
		if st.TotalBytes == 0 {
			out.Unlimited++
		} else {
			out.TotalBytes += st.TotalBytes
		}
	}
	return out, total, nil
}
