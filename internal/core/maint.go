package core

// Background-maintenance host adapter: internal/maint owns scheduling and
// policy, but every placement-aware action a maintenance loop takes —
// routing a salted name, verifying the level-1 special link that controls a
// victim hierarchy, flipping it atomically after a migration — needs the
// namespace knowledge that lives here. maintHost is that surface.

import (
	"strings"

	"repro/internal/maint"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/repl"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// maintHost adapts a Node to maint.Host.
type maintHost struct{ n *Node }

func (h maintHost) Rep() *repl.Engine { return h.n.rep }

func (h maintHost) Self() simnet.Addr { return h.n.addr }

func (h maintHost) OwnsKey(pn string) (bool, simnet.Cost) {
	return h.n.overlay.EnsureRootFor(Key(pn))
}

func (h maintHost) Route(pn string) (simnet.Addr, simnet.Cost, error) {
	res, err := h.n.overlay.Route(Key(pn))
	if err != nil {
		return "", res.Cost, err
	}
	return res.Node.Addr, res.Cost, nil
}

func (h maintHost) Candidates(k int) []simnet.Addr {
	cands := h.n.overlay.ReplicaCandidates(k)
	out := make([]simnet.Addr, len(cands))
	for i, c := range cands {
		out[i] = c.Addr
	}
	return out
}

func (h maintHost) LocalLoad() maint.Load {
	return maint.Load{Used: h.n.store.Used(), Capacity: h.n.store.Capacity()}
}

func (h maintHost) PeerLoads() map[simnet.Addr]maint.Load {
	peers := h.n.overlay.PeerLoads()
	out := make(map[simnet.Addr]maint.Load, len(peers))
	for a, l := range peers {
		out[a] = maint.Load{Used: l.Used, Capacity: l.Capacity}
	}
	return out
}

func (h maintHost) ProbeLoad(addr simnet.Addr) (maint.Load, simnet.Cost, error) {
	st, cost, err := h.n.remoteFSStat(addr)
	if err != nil {
		return maint.Load{}, cost, err
	}
	return maint.Load{Used: st.UsedBytes, Capacity: st.TotalBytes}, cost, nil
}

// EligibleVictim admits only self-verified level-1 hierarchies: either the
// unsalted home directory itself, or a salted chain root whose controlling
// special link still names exactly this placement and storage root. Deeper
// chain roots (whose link lives inside another hierarchy) and anything the
// link no longer points at are rejected — migrating those would race the
// namespace.
func (h maintHost) EligibleVictim(tc obs.TraceContext, t repl.Track) (bool, simnet.Cost) {
	base := BaseName(t.PN)
	if t.Root == "/"+base {
		// The unsalted level-1 home: a plain directory at the name itself,
		// no controlling link to verify.
		return t.PN == base, 0
	}
	if !strings.HasPrefix(t.Root, "/"+ChainSep+t.PN+".") {
		return false, 0
	}
	res, err := h.n.overlay.Route(Key(base))
	if err != nil {
		return false, res.Cost
	}
	target, c, err := h.n.readLink(tc, res.Node.Addr, "/"+base)
	cost := simnet.Seq(res.Cost, c)
	if err != nil {
		return false, cost
	}
	pn2, store2, ok := ParseLinkTarget(target)
	return ok && pn2 == t.PN && store2 == t.Root, cost
}

func (h maintHost) Salt(base string, attempt int) string { return Salted(base, attempt) }

func (h maintHost) BaseName(pn string) string { return BaseName(pn) }

func (h maintHost) NewStoreRoot(pn string) string { return h.n.newStoreRoot(pn) }

// Relink flips the level-1 entry for base into a special link naming
// (pn, storeRoot), through the routed apply path: the link host stamps the
// link track and mirrors the flip to its replica candidates, exactly like a
// foreground re-salting redirect.
func (h maintHost) Relink(tc obs.TraceContext, base, pn, storeRoot string) (simnet.Cost, error) {
	res, err := h.n.overlay.Route(Key(base))
	if err != nil {
		return res.Cost, err
	}
	e := wire.NewEncoder(256)
	e.PutUint32(kApply)
	r := applyReq{
		Key:   Key(base),
		Track: Track{PN: base, Link: "/" + base},
		Op:    FSOp{Kind: FSRelink, Path: "/" + base, Target: MakeLinkTarget(pn, storeRoot)},
	}
	r.encode(e)
	resp, c, err := h.n.callKosha(tc, res.Node.Addr, e.Bytes())
	total := simnet.Seq(res.Cost, c)
	if err != nil {
		return total, h.n.noteErr(res.Node.Addr, err)
	}
	d := wire.NewDecoder(resp)
	code := d.Uint32()
	getApplyReplyBody(d)
	if d.Err() != nil {
		return total, d.Err()
	}
	return total, codeToError(code)
}

// UntrackAt drops a root-tracking record on a peer (kUntrack), used after a
// migration retires an unsalted home whose old replica copies were already
// converted to links by the relink fan-out.
func (h maintHost) UntrackAt(tc obs.TraceContext, to simnet.Addr, root string) (simnet.Cost, error) {
	e := wire.NewEncoder(64)
	e.PutUint32(kUntrack)
	e.PutString(root)
	resp, cost, err := h.n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return cost, h.n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	code := d.Uint32()
	if d.Err() != nil {
		return cost, d.Err()
	}
	return cost, codeToError(code)
}

func (h maintHost) SyncReplicas() simnet.Cost { return h.n.rep.Sync() }

var _ maint.Host = maintHost{}

// Maint returns the node's background maintenance engine.
func (n *Node) Maint() *maint.Engine { return n.maintEng }

// loadProvider feeds the contributed store's capacity accounting to the
// overlay, which piggybacks it on leaf-set keep-alive traffic.
func (n *Node) loadProvider() pastry.Load {
	return pastry.Load{Used: n.store.Used(), Capacity: n.store.Capacity()}
}
