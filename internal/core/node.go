package core

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Config tunes one Kosha node. Zero values select the defaults used by the
// paper's experiments where it states them.
type Config struct {
	// DistributionLevel is L: how many levels of subdirectories are hashed
	// onto the overlay (Section 3.2). Minimum and default 1.
	DistributionLevel int
	// Replicas is K, the number of additional copies kept on leaf-set
	// neighbors (Section 4.2). Default 1 (the Table 1 setting).
	Replicas int
	// RedirectAttempts bounds capacity redirection retries (Section 3.3).
	// Default 4 (the Figure 6 sweet spot).
	RedirectAttempts int
	// UtilizationLimit is the store utilization beyond which new
	// directories are redirected elsewhere. Default 0.85.
	UtilizationLimit float64
	// Capacity is the contributed partition size in bytes; 0 = unlimited.
	Capacity int64
	// LeafSize is the Pastry leaf-set size l. Default 16.
	LeafSize int
	// InterposeCost is I, the fixed per-operation cost of the loopback
	// interposition (kernel crossing + local socket to koshad + handle
	// table work, Section 6.1.2). Default 300µs.
	InterposeCost simnet.Cost
	// LoopbackBytesPerSec is the data rate of the user-space loopback
	// path (kernel NFS client -> koshad). The SFS-toolkit loopback server
	// the paper builds on moves data through user space, which is why
	// Kosha on one node is slightly slower than plain NFS rather than
	// faster (Table 1). Default 12.5 MB/s, on par with the 100 Mb/s LAN.
	LoopbackBytesPerSec float64
	// P2PLookupCost is the fixed cost of one koshad -> local p2p component
	// node lookup (the local socket round trip plus substrate processing;
	// "a delay caused by the lookup for the appropriate storage node",
	// Section 4). Charged per overlay route issued on the client path, on
	// top of the per-hop network cost. Default 1ms.
	P2PLookupCost simnet.Cost
	// ReadFromReplicas spreads read operations across the primary and its
	// K replica holders instead of always reading from the primary — the
	// optimization Section 4.2 leaves as an exploration ("allow at least
	// read operations to be served from any one of the K replicas").
	// Writes still serialize through the primary.
	ReadFromReplicas bool
	// SyncReplication charges replica fan-out on the client-visible
	// critical path. Off by default: the primary replies after its local
	// apply and mirrors propagate off the measured path, matching the
	// small overheads the paper reports with replication enabled.
	SyncReplication bool
	// Disk is the cost model for the contributed partition.
	Disk simnet.DiskModel
	// AutoSync runs replica maintenance from overlay membership callbacks.
	// Default on; the cluster harness may disable it and drive SyncReplicas
	// explicitly for deterministic scheduling.
	AutoSync bool
	// noAutoSyncSet distinguishes "zero value = default on" from off.
	NoAutoSync bool
	// AttrCacheTTL bounds how long a mount may serve cached attributes
	// without revalidating, mirroring the kernel NFS client's
	// acregmin/acdirmin window the paper relies on for its low overhead
	// (Section 6.1). Default 3s; negative disables attribute caching.
	AttrCacheTTL time.Duration
	// NameCacheTTL bounds per-directory name-cache (dnlc) entries the same
	// way. Default 3s; negative disables the name cache.
	NameCacheTTL time.Duration
	// NoMetadataCache turns off both client-side metadata caches,
	// regardless of the TTL fields. Used by ablation benches.
	NoMetadataCache bool
	// WallClockStats records per-op latency histograms in wall time rather
	// than simulated cost. koshad sets it when running over tcpnet, where
	// real elapsed time is the number of interest; simulated runs leave it
	// off so histograms are deterministic.
	WallClockStats bool
	// TraceBufSize caps the per-node ring buffer of recent operation
	// traces. 0 selects obs.DefaultTraceBuf; negative disables tracing.
	TraceBufSize int
	// Seed drives every seeded random choice the node makes (currently the
	// retry backoff jitter), so a failing run is reproducible from one
	// logged value. The cluster harness derives per-node seeds from its own
	// Options.Seed.
	Seed uint64
	// RetryAttempts is the total number of tries (first send + retries) the
	// RPC retrier gives a transiently unreachable peer before surfacing the
	// error. Default 3; negative disables retries (1 try).
	RetryAttempts int
	// RetryBackoff is the base pause before the first retry; it doubles per
	// retry up to RetryBackoffCap, jittered. Charged as simulated cost.
	// Default 5ms.
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential backoff. Default 80ms.
	RetryBackoffCap time.Duration
}

func (c Config) withDefaults() Config {
	if c.DistributionLevel < 1 {
		c.DistributionLevel = 1
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	} else if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.RedirectAttempts == 0 {
		c.RedirectAttempts = 4
	}
	if c.UtilizationLimit == 0 {
		c.UtilizationLimit = 0.85
	}
	if c.LeafSize == 0 {
		c.LeafSize = pastry.DefaultLeafSize
	}
	if c.InterposeCost == 0 {
		c.InterposeCost = simnet.Cost(210_000) // 210µs
	}
	if c.LoopbackBytesPerSec == 0 {
		c.LoopbackBytesPerSec = 12.5e6
	}
	if c.P2PLookupCost == 0 {
		c.P2PLookupCost = simnet.Cost(4_000_000) // 4ms
	}
	if c.Disk == (simnet.DiskModel{}) {
		c.Disk = simnet.Disk7200
	}
	c.AutoSync = !c.NoAutoSync
	if c.AttrCacheTTL == 0 {
		c.AttrCacheTTL = 3 * time.Second
	}
	if c.NameCacheTTL == 0 {
		c.NameCacheTTL = 3 * time.Second
	}
	if c.NoMetadataCache {
		c.AttrCacheTTL = -1
		c.NameCacheTTL = -1
	}
	if c.TraceBufSize == 0 {
		c.TraceBufSize = obs.DefaultTraceBuf
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	} else if c.RetryAttempts < 1 {
		c.RetryAttempts = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.RetryBackoffCap == 0 {
		c.RetryBackoffCap = 80 * time.Millisecond
	}
	return c
}

// route asks the local p2p component for the node owning key, charging the
// substrate lookup cost on top of the overlay hops. Every route feeds the
// route histogram and hop counters; when the caller is tracing, the hop
// path (with prefix-match depths against the key) is appended to the trace.
func (n *Node) route(tr *obs.Trace, key id.ID) (pastry.RouteResult, simnet.Cost, error) {
	res, err := n.overlay.Route(key)
	n.routeCount.Add(1)
	n.routeHops.Add(uint64(res.Hops))
	n.routeHist.Observe(time.Duration(res.Cost))
	if tr != nil {
		for _, h := range res.Path {
			tr.AddHop(h.ID.String(), string(h.Addr), id.SharedPrefixLen(h.ID, key))
		}
		tr.AddSpan("route", string(res.Node.Addr), time.Duration(res.Cost))
	}
	return res, simnet.Seq(res.Cost, n.cfg.P2PLookupCost), err
}

// LoopbackXfer returns the loopback-path cost of moving n payload bytes
// between the kernel NFS client and koshad.
func (c Config) LoopbackXfer(n int) simnet.Cost {
	if c.LoopbackBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return simnet.Cost(float64(n) / c.LoopbackBytesPerSec * 1e9)
}

// Place is a resolved location for a virtual directory: the primary node
// that stores its controlling hierarchy, the placement name whose hash
// selected that node, and the hierarchy's physical storage root there.
type Place struct {
	Node  simnet.Addr
	Name  string   // controlling placement name ("" for the virtual root)
	Store string   // physical storage root of the controlling hierarchy
	Rest  []string // virtual components below the controlling directory
	VRoot bool     // the virtual root itself (no single node)
}

// PN returns the controlling placement name.
func (p Place) PN() string { return p.Name }

// PhysDir returns the physical store path of the directory itself.
func (p Place) PhysDir() string {
	if len(p.Rest) == 0 {
		return p.Store
	}
	if p.Store == "/" || p.Store == "" {
		return "/" + strings.Join(p.Rest, "/")
	}
	return p.Store + "/" + strings.Join(p.Rest, "/")
}

// SubtreeRoot returns the physical path of the replicated-hierarchy root
// (the controlling directory).
func (p Place) SubtreeRoot() string {
	if p.Store == "" {
		return "/"
	}
	return p.Store
}

// Node is one Kosha participant: contributed store + NFS server + Pastry
// overlay node + the koshad logic tying them together (Figure 4).
type Node struct {
	cfg     Config
	net     simnet.Transport
	rpc     simnet.Caller // retrying wrapper over net for client-path RPCs
	addr    simnet.Addr
	overlay *pastry.Node
	store   localfs.FileSystem
	nsrv    *nfs.Server
	nfsc    *nfs.Client

	mu           sync.Mutex
	tracked      map[string]Track // physical subtree root -> metadata (PN, version)
	trackedLinks map[string]Track // level-1 special link path -> metadata
	rootHandles  map[simnet.Addr]nfs.Handle
	replicaCache map[string][]simnet.Addr // subtree root -> replica holders

	cacheMu  sync.Mutex
	dirCache map[string]Place // virtual dir path -> place

	// Observability: the node-wide metrics registry (shared with the NFS
	// client), the operation tracer, and the overlay-health event log.
	// Hot-path metrics are cached as struct fields.
	reg        *obs.Registry
	tracer     *obs.Tracer
	events     *obs.EventLog
	routeCount *obs.Counter
	routeHops  *obs.Counter
	routeHist  *obs.Histogram
	opsTotal   *obs.Counter
	opErrors   *obs.Counter
	opHists    [obs.OpcCount]*obs.Histogram // cached "op.<OP>" histograms, indexed by OpCode
	repCount   *obs.Counter
	repFanout  *obs.Counter
	repHist    *obs.Histogram

	syncing  atomic.Bool
	storeSeq atomic.Uint64 // storage-root allocation counter
	gen      uint64        // store incarnation counter
}

// nodeHistNames are the histogram keys every node registers at
// construction: route and replicate first, then the "op.<OP>" set in
// OpCode order. Built once per process so node construction (frequent in
// simulated clusters) does no string work.
var nodeHistNames = func() []string {
	names := []string{"op." + obs.OpRoute, "op." + obs.OpReplicate}
	for c := obs.OpCode(0); c < obs.OpcCount; c++ {
		names = append(names, "op."+c.String())
	}
	return names
}()

// NewNode builds a Kosha node with the given network address and overlay
// identifier, attaches its services, and returns it un-joined. The
// contributed store is in-memory; use NewNodeWithStore for a persistent
// backend.
func NewNode(addr simnet.Addr, nodeID id.ID, net simnet.Transport, cfg Config) *Node {
	c := cfg.withDefaults()
	return NewNodeWithStore(addr, nodeID, net, cfg, localfs.New(c.Capacity, c.Disk))
}

// NewNodeWithStore builds a Kosha node over a caller-supplied contributed
// store (e.g. internal/diskfs for a persistent partition).
func NewNodeWithStore(addr simnet.Addr, nodeID id.ID, net simnet.Transport, cfg Config, store localfs.FileSystem) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:          cfg,
		net:          net,
		addr:         addr,
		store:        store,
		tracked:      make(map[string]Track),
		trackedLinks: make(map[string]Track),
		rootHandles:  make(map[simnet.Addr]nfs.Handle),
		replicaCache: make(map[string][]simnet.Addr),
		dirCache:     make(map[string]Place),
		gen:          1,
	}
	n.reg = obs.NewRegistry()
	tbuf := cfg.TraceBufSize
	if tbuf < 0 {
		tbuf = 0
	}
	n.tracer = obs.NewTracer(tbuf)
	n.events = obs.NewEventLog(0)
	n.routeCount = n.reg.Counter("route.count")
	n.routeHops = n.reg.Counter("route.hops")
	n.opsTotal = n.reg.Counter("ops.total")
	n.opErrors = n.reg.Counter("ops.errors")
	n.repCount = n.reg.Counter("replicate.count")
	n.repFanout = n.reg.Counter("replicate.fanout")
	hists := n.reg.Histograms(nodeHistNames...)
	n.routeHist, n.repHist = hists[0], hists[1]
	copy(n.opHists[:], hists[2:])
	n.nsrv = nfs.NewServer(n.store, n.gen)
	// Client-path RPCs (NFS forwarding and the kosha service) go through a
	// retrying caller so transient message loss does not read as node death;
	// the overlay keeps the raw transport because its liveness probes need
	// to see real timeouts.
	n.rpc = newRetrier(net, cfg, n.reg)
	n.nfsc = nfs.NewClientWithRegistry(n.rpc, addr, n.reg)
	n.overlay = pastry.NewNode(nodeID, addr, net, cfg.LeafSize)
	n.overlay.OnLeafSetChange(n.onLeafChange)
	n.attach()
	return n
}

func (n *Node) attach() {
	n.overlay.Attach()
	n.nsrv.Attach(n.net, n.addr)
	n.net.Register(n.addr, KoshaService, n.handleKosha)
}

// newStoreRoot allocates a fresh, node-unique physical storage root for a
// hierarchy with the given placement name. The leading control byte keeps
// these roots out of virtual listings and out of reach of user names.
func (n *Node) newStoreRoot(pn string) string {
	c := n.storeSeq.Add(1)
	return "/" + ChainSep + pn + "." + Salt(string(n.addr), int(c))
}

// Addr returns the node's network address.
func (n *Node) Addr() simnet.Addr { return n.addr }

// NFSStats returns cumulative NFS RPC counters for this node's client side
// (every mount on the node shares it), letting experiments report rpcs/op.
func (n *Node) NFSStats() nfs.ClientStats { return n.nfsc.Stats() }

// ResetNFSStats zeroes the node's NFS RPC counters.
func (n *Node) ResetNFSStats() { n.nfsc.ResetStats() }

// NFSProcCount returns how many RPCs of one procedure this node has issued.
func (n *Node) NFSProcCount(p nfs.Proc) uint64 { return n.nfsc.ProcCount(p) }

// Obs returns the node-wide metrics registry (per-op latency histograms,
// route/replicate/failover counters, and the NFS client's RPC counters).
func (n *Node) Obs() *obs.Registry { return n.reg }

// Tracer returns the node's operation tracer (nil traces when disabled).
func (n *Node) Tracer() *obs.Tracer { return n.tracer }

// Events returns the node's overlay-health event log.
func (n *Node) Events() *obs.EventLog { return n.events }

// ID returns the node's overlay identifier.
func (n *Node) ID() id.ID { return n.overlay.Info().ID }

// Overlay exposes the Pastry node (cluster harness, tests).
func (n *Node) Overlay() *pastry.Node { return n.overlay }

// Store exposes the contributed partition (tests, experiments).
func (n *Node) Store() localfs.FileSystem { return n.store }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Join enters the overlay via seed ("" starts a new overlay).
func (n *Node) Join(seed simnet.Addr) (simnet.Cost, error) {
	return n.overlay.Bootstrap(seed)
}

// onLeafChange reacts to overlay membership changes: location caches become
// suspect, and replica placement must be re-established (Section 4.3).
func (n *Node) onLeafChange(c pastry.LeafSetChange) {
	for _, p := range c.Joined {
		n.events.Add(obs.EvJoin, string(p.Addr), p.ID.Short())
	}
	for _, p := range c.Left {
		n.events.Add(obs.EvDeparture, string(p.Addr), p.ID.Short())
	}
	n.events.Add(obs.EvCachePurge, string(n.addr), "leaf-set change")
	n.cacheMu.Lock()
	n.dirCache = make(map[string]Place)
	n.cacheMu.Unlock()
	n.mu.Lock()
	n.replicaCache = make(map[string][]simnet.Addr)
	n.mu.Unlock()
	if n.cfg.AutoSync {
		n.SyncReplicas()
	}
}

// invalidateNode drops all client-side state naming a (presumed dead) node
// and tells the overlay, so re-resolution routes around it (Section 4.4).
func (n *Node) invalidateNode(dead simnet.Addr) {
	n.mu.Lock()
	delete(n.rootHandles, dead)
	n.replicaCache = make(map[string][]simnet.Addr)
	n.mu.Unlock()
	n.cacheMu.Lock()
	for k, p := range n.dirCache {
		if p.Node == dead {
			delete(n.dirCache, k)
		}
	}
	n.cacheMu.Unlock()
	n.overlay.MarkDead(dead)
}

// Fail crashes the node (network-level) for fault-injection tests; it is a
// no-op on transports without failure injection.
func (n *Node) Fail() {
	if d, ok := n.net.(simnet.Downer); ok {
		d.SetDown(n.addr, true)
	}
}

// Revive restarts a crashed node with a fresh overlay identifier, purging
// all Kosha data: "since a node can be revived with a different identifier
// ... all Kosha data on a revived node is purged" (Section 4.3.2).
func (n *Node) Revive(newID id.ID, seed simnet.Addr) (simnet.Cost, error) {
	if d, ok := n.net.(simnet.Downer); ok {
		d.SetDown(n.addr, false)
	}
	n.store.RemoveAll("/")
	n.mu.Lock()
	n.gen++
	n.tracked = make(map[string]Track)
	n.trackedLinks = make(map[string]Track)
	n.rootHandles = make(map[simnet.Addr]nfs.Handle)
	n.replicaCache = make(map[string][]simnet.Addr)
	gen := n.gen
	n.mu.Unlock()
	n.cacheMu.Lock()
	n.dirCache = make(map[string]Place)
	n.cacheMu.Unlock()
	n.nsrv.Bump()
	_ = gen
	n.overlay = pastry.NewNode(newID, n.addr, n.net, n.cfg.LeafSize)
	n.overlay.OnLeafSetChange(n.onLeafChange)
	n.attach()
	return n.Join(seed)
}

// TrackedRoots returns a snapshot of the subtree roots this node holds
// (primary or replica), for tests and experiments.
func (n *Node) TrackedRoots() map[string]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]string, len(n.tracked))
	for k, v := range n.tracked {
		out[k] = v.PN
	}
	return out
}

// isDead reports whether this node's record for a root is a tombstone.
func (n *Node) isDead(root string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	t, ok := n.tracked[root]
	return ok && t.Dead
}

// verOf returns this node's recorded mutation counter for a root or link.
func (n *Node) verOf(key string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t, ok := n.tracked[key]; ok {
		return t.Ver
	}
	if t, ok := n.trackedLinks[key]; ok {
		return t.Ver
	}
	return 0
}

// bumpVer returns the next mutation counter value for a tracked root or
// link without storing it; the subsequent track() call records it together
// with the op's liveness.
func (n *Node) bumpVer(t Track) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t.Link != "" {
		return n.trackedLinks[t.Link].Ver + 1
	}
	if t.Root == "" {
		return 0
	}
	return n.tracked[t.Root].Ver + 1
}

// --- store mutation execution ---

// applyFSOp executes a path-based mutation on the local store. lenient mode
// (replica application) auto-creates missing ancestors and tolerates
// re-application, keeping mirrors idempotent.
func (n *Node) applyFSOp(op FSOp, lenient bool) (localfs.Attr, simnet.Cost, error) {
	// Path resolution against a warm name cache is much cheaper than a
	// data-bearing disk op; charge a small fixed cost rather than a full
	// disk operation so path-based mutations stay comparable to the
	// handle-based NFS ones they stand in for.
	resolveCost := simnet.Cost(50_000)
	parentOf := func(p string) (localfs.Attr, error) {
		dir := path.Dir(p)
		if lenient {
			return n.store.MkdirAll(dir)
		}
		return n.store.LookupPath(dir)
	}
	switch op.Kind {
	case FSMkdirAll:
		attr, err := n.store.MkdirAll(op.Path)
		return attr, resolveCost, err

	case FSMkdir:
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Mkdir(pattr.Ino, path.Base(op.Path), op.Mode)
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrExist {
			attr, err = n.store.LookupPath(op.Path)
		}
		return attr, simnet.Seq(resolveCost, cost), err

	case FSCreate:
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		excl := op.Excl && !lenient
		attr, cost, err := n.store.Create(pattr.Ino, path.Base(op.Path), op.Mode, excl)
		return attr, simnet.Seq(resolveCost, cost), err

	case FSWrite:
		attr, err := n.store.LookupPath(op.Path)
		if err != nil && lenient {
			if werr := n.store.WriteFile(op.Path, nil); werr == nil {
				attr, err = n.store.LookupPath(op.Path)
			}
		}
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		_, cost, err := n.store.Write(attr.Ino, op.Offset, op.Data)
		if err != nil {
			return localfs.Attr{}, simnet.Seq(resolveCost, cost), err
		}
		attr, _ = n.store.LookupPath(op.Path)
		return attr, simnet.Seq(resolveCost, cost), nil

	case FSWriteFile:
		if err := n.store.WriteFile(op.Path, op.Data); err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, err := n.store.LookupPath(op.Path)
		return attr, simnet.Seq(resolveCost, n.cfg.Disk.OpCost(len(op.Data))), err

	case FSSetattr:
		attr, err := n.store.LookupPath(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Setattr(attr.Ino, op.SetAttr)
		return attr, simnet.Seq(resolveCost, cost), err

	case FSRemove:
		pattr, err := n.store.LookupPath(path.Dir(op.Path))
		if err != nil {
			if lenient {
				return localfs.Attr{}, resolveCost, nil
			}
			return localfs.Attr{}, resolveCost, err
		}
		cost, err := n.store.Remove(pattr.Ino, path.Base(op.Path))
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrNoEnt {
			err = nil
		}
		if err == nil && op.Prune {
			n.pruneUp(path.Dir(op.Path))
		}
		return localfs.Attr{}, simnet.Seq(resolveCost, cost), err

	case FSRmdir:
		pattr, err := n.store.LookupPath(path.Dir(op.Path))
		if err != nil {
			if lenient {
				return localfs.Attr{}, resolveCost, nil
			}
			return localfs.Attr{}, resolveCost, err
		}
		cost, err := n.store.Rmdir(pattr.Ino, path.Base(op.Path))
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrNoEnt {
			err = nil
		}
		if err == nil && op.Prune {
			n.pruneUp(path.Dir(op.Path))
		}
		return localfs.Attr{}, simnet.Seq(resolveCost, cost), err

	case FSRemoveAll:
		err := n.store.RemoveAll(op.Path)
		if err == nil && op.Prune {
			n.pruneUp(path.Dir(op.Path))
		}
		return localfs.Attr{}, resolveCost, err

	case FSRename:
		spattr, err := n.store.LookupPath(path.Dir(op.Path))
		if err != nil {
			if lenient {
				return localfs.Attr{}, resolveCost, nil
			}
			return localfs.Attr{}, resolveCost, err
		}
		dpattr, err := parentOf(op.Path2)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		cost, err := n.store.Rename(spattr.Ino, path.Base(op.Path), dpattr.Ino, path.Base(op.Path2))
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrNoEnt {
			err = nil
		}
		return localfs.Attr{}, simnet.Seq(resolveCost, cost), err

	case FSSymlink:
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Symlink(pattr.Ino, path.Base(op.Path), op.Target)
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrExist {
			// Replace: mirrors converge on the latest target.
			if _, rerr := n.store.Remove(pattr.Ino, path.Base(op.Path)); rerr == nil {
				attr, cost, err = n.store.Symlink(pattr.Ino, path.Base(op.Path), op.Target)
			}
		}
		return attr, simnet.Seq(resolveCost, cost), err

	default:
		return localfs.Attr{}, 0, fmt.Errorf("kosha: unknown FS op %v", op.Kind)
	}
}

// pruneUp removes empty scaffolding directories above a deleted entry,
// stopping at tracked subtree roots and the store root (Section 4.1.5: "The
// empty hierarchy leading to the subdirectory is then deleted").
func (n *Node) pruneUp(dir string) {
	for dir != "/" && dir != "." {
		n.mu.Lock()
		_, isTracked := n.tracked[dir]
		n.mu.Unlock()
		if isTracked {
			return
		}
		attr, err := n.store.LookupPath(dir)
		if err != nil || attr.Type != localfs.TypeDir {
			return
		}
		ents, _, err := n.store.Readdir(attr.Ino)
		if err != nil || len(ents) > 0 {
			return
		}
		parent := path.Dir(dir)
		pattr, err := n.store.LookupPath(parent)
		if err != nil {
			return
		}
		if _, err := n.store.Rmdir(pattr.Ino, path.Base(dir)); err != nil {
			return
		}
		dir = parent
	}
}

// track records subtree/link ownership metadata shipped with a mutation.
func (n *Node) track(t Track, op FSOp) {
	if t.PN == "" {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if t.Link != "" {
		t.Dead = op.Kind == FSRemove
		n.trackedLinks[t.Link] = t
		return
	}
	if t.Root == "" {
		return
	}
	// A storage-root rename (the cheap-rename path) rekeys the entry,
	// carrying the version chain to the new root.
	if op.Kind == FSRename && (op.Path2 == t.Root || op.Path2 == RepPath(t.Root)) {
		old := op.Path
		if len(old) > len(RepArea) && old[:len(RepArea)] == RepArea {
			old = old[len(RepArea):]
		}
		if cur, ok := n.tracked[old]; ok {
			if cur.Ver > t.Ver {
				t.Ver = cur.Ver
			}
			delete(n.tracked, old)
		}
		n.tracked[t.Root] = t
		return
	}
	// A removal of the hierarchy root becomes a tombstone: the entry stays
	// with a bumped version so a node holding a stale copy can learn that
	// deletion is the newer state, and a later re-creation continues the
	// version chain above the tombstone.
	t.Dead = (op.Kind == FSRmdir || op.Kind == FSRemoveAll) &&
		(op.Path == t.Root || op.Path == RepPath(t.Root))
	// Last writer wins: the copy now reflects the sender's version, so the
	// record does too (a full re-push may legitimately lower it).
	n.tracked[t.Root] = t
}

// statTree summarizes the local subtree stored at exactly this path.
func (n *Node) statTree(root string) TreeStat {
	var st TreeStat
	if _, err := n.store.LookupPath(root); err != nil {
		return st
	}
	st.Exists = true
	n.store.Walk(root, func(p string, a localfs.Attr, _ string) error {
		if a.Type == localfs.TypeDir {
			st.Dirs++
			return nil
		}
		if path.Base(p) == MigrationFlag {
			st.Flag = true
			return nil
		}
		st.Files++
		st.Bytes += a.Size
		return nil
	})
	return st
}

// localTreePath locates this node's copy of a subtree: at the primary path
// when it owns the key, otherwise in the replica area.
func (n *Node) localTreePath(root string) (string, bool) {
	if _, err := n.store.LookupPath(root); err == nil {
		return root, true
	}
	if _, err := n.store.LookupPath(RepPath(root)); err == nil {
		return RepPath(root), true
	}
	return "", false
}

// promoteLocal moves a replica-area copy of a subtree (or level-1 special
// link) to its primary path. Call only after confirming ownership of the
// key; it is a no-op when the primary path already exists or no replica
// copy is held. Reports whether it surfaced anything.
func (n *Node) promoteLocal(t Track) bool {
	target := t.Root
	if t.Link != "" {
		target = t.Link
	}
	if target == "" {
		return false
	}
	n.mu.Lock()
	meta, ok := n.tracked[t.Root]
	if t.Link != "" {
		meta, ok = n.trackedLinks[t.Link]
	}
	n.mu.Unlock()
	if ok && meta.Dead {
		// We saw the hierarchy's deletion: nothing to surface, and any
		// leftover replica-area data is stale.
		n.store.RemoveAll(RepPath(target))
		return false
	}
	if _, err := n.store.LookupPath(target); err == nil {
		return false
	}
	src := RepPath(target)
	if _, err := n.store.LookupPath(src); err != nil {
		return false
	}
	if _, err := n.store.MkdirAll(path.Dir(target)); err != nil {
		return false
	}
	spar, err := n.store.LookupPath(path.Dir(src))
	if err != nil {
		return false
	}
	dpar, err := n.store.LookupPath(path.Dir(target))
	if err != nil {
		return false
	}
	if _, err := n.store.Rename(spar.Ino, path.Base(src), dpar.Ino, path.Base(target)); err != nil {
		return false
	}
	n.pruneUp(path.Dir(src))
	n.track(t, FSOp{Kind: FSMkdirAll, Path: t.Root})
	return true
}

// --- kosha service (server side) ---

func (n *Node) handleKosha(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	d := wire.NewDecoder(req)
	proc := d.Uint32()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	e := wire.NewEncoder(256)
	switch proc {
	case kApply:
		r := decodeApplyReq(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		// Primary check: all accesses go to the primary replica (Section
		// 4.2). The check is active — a better candidate is pinged and
		// purged if dead — so a node bordering a fresh failure accepts
		// ownership immediately (Section 4.4).
		var checkCost simnet.Cost
		if !r.Key.IsZero() {
			isRoot, c := n.overlay.EnsureRootFor(r.Key)
			checkCost = c
			if !isRoot {
				e.PutUint32(codeNotPrimary)
				putApplyReplyBody(e, localfs.Attr{}, nfs.Handle{}, 0)
				return cp(e), checkCost, nil
			}
			// Cold path after an ownership change: surface the local
			// replica-area copy and adopt any newer version (or newer
			// deletion) a current replica holds. Skipped when the primary
			// path already exists — the warm, per-mutation case.
			if r.Track.Root != "" {
				if _, err := n.store.LookupPath(r.Track.Root); err != nil {
					c, _ := n.adoptRoot(r.Track)
					checkCost = simnet.Seq(checkCost, c)
				}
			}
		}
		attr, cost, err := n.applyFSOp(r.Op, false)
		if err != nil {
			e.PutUint32(codeNFSBase + uint32(nfs.ToStatus(err)))
			putApplyReplyBody(e, localfs.Attr{}, nfs.Handle{}, 0)
			return cp(e), simnet.Seq(checkCost, cost), nil
		}
		if r.Op.Kind == FSRename && r.Op.Path2 == r.Track.Root {
			// Storage-root rename: continue the old root's version chain.
			n.mu.Lock()
			r.Track.Ver = n.tracked[r.Op.Path].Ver + 1
			n.mu.Unlock()
		} else {
			r.Track.Ver = n.bumpVer(r.Track)
		}
		n.track(r.Track, r.Op)
		// Fan out to the K leaf-set replicas; the primary "forwards the
		// RPC to all the replicas" (Section 4.2). Failures are tolerated:
		// replica repair happens on membership change. Removals of a whole
		// hierarchy (or level-1 link) additionally reach every leaf-set
		// member: former replica candidates may still hold copies, and a
		// deletion they miss would resurrect when ownership drifts to them.
		targets := n.overlay.ReplicaCandidates(n.cfg.Replicas)
		removesRoot := (r.Op.Kind == FSRmdir || r.Op.Kind == FSRemoveAll) && r.Op.Path == r.Track.Root
		removesLink := r.Op.Kind == FSRemove && r.Track.Link != ""
		if removesRoot || removesLink {
			targets = n.overlay.Leaf()
		}
		var fanout []simnet.Cost
		for _, rep := range targets {
			c, _ := n.mirror(rep.Addr, r.Track, r.Op)
			fanout = append(fanout, c)
		}
		if len(targets) > 0 {
			n.repCount.Add(1)
			n.repFanout.Add(uint64(len(targets)))
			n.repHist.Observe(time.Duration(simnet.Par(fanout...)))
		}
		if n.cfg.SyncReplication {
			cost = simnet.Seq(checkCost, cost, simnet.Par(fanout...))
		} else {
			cost = simnet.Seq(checkCost, cost)
		}
		e.PutUint32(codeOK)
		putApplyReplyBody(e, attr, nfs.Handle{Gen: n.nsrvGen(), Ino: attr.Ino}, len(targets))
		return cp(e), cost, nil

	case kMirror:
		r := decodeApplyReq(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		// Replica copies live in the reserved replica area, outside the
		// primary namespace ("the replicas are inaccessible to the local
		// users", Section 4.2). A migration push addressed to this node as
		// the key's new primary lands in the primary namespace directly.
		if !r.Primary {
			r.Op.Path = RepPath(r.Op.Path)
			if r.Op.Path2 != "" {
				r.Op.Path2 = RepPath(r.Op.Path2)
			}
		}
		attr, cost, err := n.applyFSOp(r.Op, true)
		if err != nil {
			e.PutUint32(codeNFSBase + uint32(nfs.ToStatus(err)))
			putApplyReplyBody(e, localfs.Attr{}, nfs.Handle{}, 0)
			return cp(e), cost, nil
		}
		n.track(r.Track, r.Op)
		e.PutUint32(codeOK)
		putApplyReplyBody(e, attr, nfs.Handle{Gen: n.nsrvGen(), Ino: attr.Ino}, 0)
		return cp(e), cost, nil

	case kStatTree:
		root := d.String()
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		st := n.statTree(root)
		// Version is keyed by the primary-relative root regardless of the
		// area being statted.
		verKey := root
		if len(root) > len(RepArea) && root[:len(RepArea)] == RepArea {
			verKey = root[len(RepArea):]
		}
		st.Ver = n.verOf(verKey)
		e.PutUint32(codeOK)
		e.PutBool(st.Exists)
		e.PutInt64(st.Files)
		e.PutInt64(st.Dirs)
		e.PutInt64(st.Bytes)
		e.PutBool(st.Flag)
		e.PutUint64(st.Ver)
		return cp(e), n.cfg.Disk.OpCost(0), nil

	case kUntrack:
		root := d.String()
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.mu.Lock()
		delete(n.tracked, root)
		n.mu.Unlock()
		e.PutUint32(codeOK)
		return cp(e), 0, nil

	case kReplicas:
		var key id.ID
		d.FixedOpaque(key[:])
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		if isRoot, cost := n.overlay.EnsureRootFor(key); !isRoot {
			e.PutUint32(codeNotPrimary)
			return cp(e), cost, nil
		}
		reps := n.overlay.ReplicaCandidates(n.cfg.Replicas)
		e.PutUint32(codeOK)
		e.PutUint32(uint32(len(reps)))
		for _, rep := range reps {
			e.PutString(string(rep.Addr))
		}
		return cp(e), 0, nil

	case kPromote:
		t := getTrack(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		key := Key(t.PN)
		isRoot, cost := n.overlay.EnsureRootFor(key)
		if !isRoot {
			e.PutUint32(codeNotPrimary)
			return cp(e), cost, nil
		}
		c, changed := n.adoptRoot(t)
		cost = simnet.Seq(cost, c)
		e.PutUint32(codeOK)
		e.PutBool(changed)
		return cp(e), simnet.Seq(cost, n.cfg.Disk.OpCost(0)), nil

	default:
		return nil, 0, fmt.Errorf("kosha: unknown proc %d", proc)
	}
}

func (n *Node) nsrvGen() uint64 {
	return n.nsrv.Root().Gen
}

func putApplyReplyBody(e *wire.Encoder, attr localfs.Attr, fh nfs.Handle, fanout int) {
	e.PutUint64(attr.Ino)
	e.PutUint32(uint32(attr.Type))
	e.PutUint32(attr.Mode)
	e.PutInt64(attr.Size)
	e.PutUint64(fh.Gen)
	e.PutUint64(fh.Ino)
	e.PutUint32(uint32(fanout)) // replica fan-out width, for trace records
}

func getApplyReplyBody(d *wire.Decoder) (localfs.Attr, nfs.Handle, int) {
	var attr localfs.Attr
	attr.Ino = d.Uint64()
	attr.Type = localfs.FileType(d.Uint32())
	attr.Mode = d.Uint32()
	attr.Size = d.Int64()
	var fh nfs.Handle
	fh.Gen = d.Uint64()
	fh.Ino = d.Uint64()
	return attr, fh, int(d.Uint32())
}

func cp(e *wire.Encoder) []byte { return append([]byte(nil), e.Bytes()...) }

// --- kosha service (client side) ---

// apply sends a mutation to the primary for key at addr. A non-nil trace
// records the serving node, the replica fan-out width, and an apply span.
func (n *Node) apply(tr *obs.Trace, to simnet.Addr, key id.ID, t Track, op FSOp) (localfs.Attr, nfs.Handle, simnet.Cost, error) {
	e := wire.NewEncoder(256 + len(op.Data))
	e.PutUint32(kApply)
	r := applyReq{Key: key, Track: t, Op: op}
	r.encode(e)
	resp, cost, err := n.rpc.Call(n.addr, to, KoshaService, e.Bytes())
	if err != nil {
		return localfs.Attr{}, nfs.Handle{}, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	code := d.Uint32()
	attr, fh, fanout := getApplyReplyBody(d)
	if d.Err() != nil {
		return localfs.Attr{}, nfs.Handle{}, cost, d.Err()
	}
	if err := codeToError(code); err != nil {
		return attr, fh, cost, err
	}
	tr.AddSpan("apply", string(to), time.Duration(cost))
	tr.SetServedBy(string(to))
	if fanout > 0 {
		tr.SetReplicas(fanout)
	}
	return attr, fh, cost, nil
}

// mirror ships a mutation to one replica (replica area).
func (n *Node) mirror(to simnet.Addr, t Track, op FSOp) (simnet.Cost, error) {
	return n.mirrorArea(to, t, op, false)
}

// mirrorArea ships a mutation to another node; primary selects the
// namespace it lands in.
func (n *Node) mirrorArea(to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error) {
	e := wire.NewEncoder(256 + len(op.Data))
	e.PutUint32(kMirror)
	r := applyReq{Track: t, Op: op, Primary: primary}
	r.encode(e)
	resp, cost, err := n.rpc.Call(n.addr, to, KoshaService, e.Bytes())
	if err != nil {
		return cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	code := d.Uint32()
	if d.Err() != nil {
		return cost, d.Err()
	}
	return cost, codeToError(code)
}

// remoteStatTree summarizes a subtree on another node.
func (n *Node) remoteStatTree(to simnet.Addr, root string) (TreeStat, simnet.Cost, error) {
	e := wire.NewEncoder(64)
	e.PutUint32(kStatTree)
	e.PutString(root)
	resp, cost, err := n.rpc.Call(n.addr, to, KoshaService, e.Bytes())
	if err != nil {
		return TreeStat{}, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return TreeStat{}, cost, codeToError(code)
	}
	st := TreeStat{Exists: d.Bool(), Files: d.Int64(), Dirs: d.Int64(), Bytes: d.Int64(), Flag: d.Bool(), Ver: d.Uint64()}
	return st, cost, d.Err()
}

// replicaSet asks the primary for its current replica holders of a key,
// caching the answer per subtree root. The cache is dropped whenever the
// node's view of membership changes.
func (n *Node) replicaSet(primary simnet.Addr, key id.ID, root string) ([]simnet.Addr, simnet.Cost, error) {
	n.mu.Lock()
	if reps, ok := n.replicaCache[root]; ok {
		n.mu.Unlock()
		return reps, 0, nil
	}
	n.mu.Unlock()
	e := wire.NewEncoder(32)
	e.PutUint32(kReplicas)
	e.PutFixedOpaque(key[:])
	resp, cost, err := n.rpc.Call(n.addr, primary, KoshaService, e.Bytes())
	if err != nil {
		return nil, cost, n.noteErr(primary, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return nil, cost, codeToError(code)
	}
	cnt := d.ArrayLen()
	reps := make([]simnet.Addr, 0, cnt)
	for i := 0; i < cnt; i++ {
		reps = append(reps, simnet.Addr(d.String()))
	}
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	n.mu.Lock()
	n.replicaCache[root] = reps
	n.mu.Unlock()
	return reps, cost, nil
}

// dropRootHandle forgets a cached export root handle. A node that crashed
// and rejoined re-incarnates its store under a new handle generation, so a
// caller observing ErrStale on a cached handle drops it and refetches.
func (n *Node) dropRootHandle(to simnet.Addr) {
	n.mu.Lock()
	delete(n.rootHandles, to)
	n.mu.Unlock()
}

// remoteFSStat fetches FSSTAT from a node's export, refreshing a stale
// cached root handle once.
func (n *Node) remoteFSStat(to simnet.Addr) (nfs.FSStat, simnet.Cost, error) {
	var total simnet.Cost
	for attempt := 0; ; attempt++ {
		rootH, c, err := n.rootHandle(to)
		total = simnet.Seq(total, c)
		if err != nil {
			return nfs.FSStat{}, total, err
		}
		st, c, err := n.nfsc.FSStat(to, rootH)
		total = simnet.Seq(total, c)
		if err != nil && nfs.IsStatus(err, nfs.ErrStale) && attempt == 0 {
			n.dropRootHandle(to)
			continue
		}
		return st, total, err
	}
}

// rootHandle returns (and caches) the NFS root handle of a node's export.
func (n *Node) rootHandle(to simnet.Addr) (nfs.Handle, simnet.Cost, error) {
	n.mu.Lock()
	h, ok := n.rootHandles[to]
	n.mu.Unlock()
	if ok {
		return h, 0, nil
	}
	h, cost, err := n.nfsc.MountRoot(to)
	if err != nil {
		return nfs.Handle{}, cost, err
	}
	n.mu.Lock()
	n.rootHandles[to] = h
	n.mu.Unlock()
	return h, cost, nil
}

// --- replica maintenance and migration (Sections 4.2-4.4) ---

// SyncReplicas re-establishes the replication invariant for every subtree
// and level-1 link this node tracks: if this node is the primary it pushes
// to its current K leaf-set neighbors; if ownership moved (a closer node
// joined) it migrates the subtree to the new primary, keeping its own copy
// as a replica (Section 4.3.1). Returns the simulated cost.
func (n *Node) SyncReplicas() (total simnet.Cost) {
	if !n.syncing.CompareAndSwap(false, true) {
		return 0
	}
	defer n.syncing.Store(false)
	n.events.Add(obs.EvResync, string(n.addr), "")
	defer func() {
		n.reg.Observe("op."+obs.OpResync, time.Duration(total))
	}()
	// Snapshot in sorted order: map iteration order would otherwise vary the
	// RPC sequence between runs, breaking seed-exact replay of fault
	// schedules (the chaos harness's determinism contract).
	type trackedRoot struct {
		root string
		meta Track
	}
	n.mu.Lock()
	roots := make([]trackedRoot, 0, len(n.tracked))
	for r, t := range n.tracked {
		roots = append(roots, trackedRoot{r, t})
	}
	links := make([]Track, 0, len(n.trackedLinks))
	linkKeys := make([]string, 0, len(n.trackedLinks))
	for p := range n.trackedLinks {
		linkKeys = append(linkKeys, p)
	}
	sort.Strings(linkKeys)
	for _, p := range linkKeys {
		links = append(links, n.trackedLinks[p])
	}
	n.mu.Unlock()
	sort.Slice(roots, func(i, j int) bool { return roots[i].root < roots[j].root })

	for _, tr := range roots {
		root, meta := tr.root, tr.meta
		key := Key(meta.PN)
		t := Track{PN: meta.PN, Root: root, Ver: meta.Ver, Dead: meta.Dead}
		if isRoot, c := n.overlay.EnsureRootFor(key); isRoot {
			total = simnet.Seq(total, c)
			if meta.Dead {
				// Propagate the deletion to any replica still holding a
				// copy older than the tombstone. The replicas are
				// independent peers, so the fan-out cost is the slowest
				// branch, not the sum.
				var fan []simnet.Cost
				for _, rep := range n.overlay.ReplicaCandidates(n.cfg.Replicas) {
					st, c, err := n.remoteStatTree(rep.Addr, RepPath(root))
					if err != nil || (!st.Exists && st.Ver >= t.Ver) {
						fan = append(fan, c)
						continue
					}
					mc, _ := n.mirror(rep.Addr, t, FSOp{Kind: FSRemoveAll, Path: root})
					fan = append(fan, simnet.Seq(c, mc))
				}
				total = simnet.Seq(total, simnet.Par(fan...))
				continue
			}
			// Surface any replica-area copy; if a replica holds a newer
			// version or a newer deletion, adopt it before refreshing.
			ac, _ := n.adoptRoot(t)
			total = simnet.Seq(total, ac)
			t.Ver = n.verOf(root)
			if n.isDead(root) {
				continue
			}
			var fan []simnet.Cost
			for _, rep := range n.overlay.ReplicaCandidates(n.cfg.Replicas) {
				c, _ := n.ensureTree(rep.Addr, t, false)
				fan = append(fan, c)
			}
			total = simnet.Seq(total, simnet.Par(fan...))
			continue
		} else {
			total = simnet.Seq(total, c)
		}
		res, err := n.overlay.Route(key)
		total = simnet.Seq(total, res.Cost)
		if err != nil || res.Node.Addr == n.addr {
			continue
		}
		if meta.Dead {
			// Tell the new owner about the deletion unless it already
			// knows a state at least as new.
			st, c, err := n.remoteStatTree(res.Node.Addr, root)
			total = simnet.Seq(total, c)
			if err == nil && st.Ver < t.Ver {
				c, _ = n.mirrorArea(res.Node.Addr, t, FSOp{Kind: FSRemoveAll, Path: root, Prune: true}, true)
				total = simnet.Seq(total, c)
			}
			continue
		}
		// Someone else owns the key now: migrate the subtree to them; our
		// copy stays behind as one of the replicas (Section 4.3.1), parked
		// back in the replica area.
		c, err := n.ensureTree(res.Node.Addr, t, true)
		total = simnet.Seq(total, c)
		if err == nil {
			n.demoteLocal(t)
		}
	}

	for _, t := range links {
		src, ok := n.localTreePath(t.Link)
		if !ok {
			continue
		}
		linkAttr, err := n.store.LookupPath(src)
		if err != nil {
			continue
		}
		tgt, _, err := n.store.Readlink(linkAttr.Ino)
		if err != nil {
			continue
		}
		op := FSOp{Kind: FSSymlink, Path: t.Link, Target: tgt}
		key := Key(t.PN)
		if isRoot, c := n.overlay.EnsureRootFor(key); isRoot {
			total = simnet.Seq(total, c)
			n.promoteLocal(t)
			var fan []simnet.Cost
			for _, rep := range n.overlay.ReplicaCandidates(n.cfg.Replicas) {
				c, _ := n.mirror(rep.Addr, t, op)
				fan = append(fan, c)
			}
			total = simnet.Seq(total, simnet.Par(fan...))
			continue
		} else {
			total = simnet.Seq(total, c)
		}
		res, err := n.overlay.Route(key)
		total = simnet.Seq(total, res.Cost)
		if err != nil || res.Node.Addr == n.addr {
			continue
		}
		c, merr := n.mirror(res.Node.Addr, t, op)
		total = simnet.Seq(total, c)
		_, c, perr := n.promote(res.Node.Addr, t)
		total = simnet.Seq(total, c)
		if merr == nil && perr == nil {
			n.demoteLocal(t)
		}
	}
	return total
}

// ensureTree makes target hold an up-to-date replica-area copy of the
// local subtree, pushing a full copy under the MIGRATION_NOT_COMPLETE flag
// protocol when the remote copy is missing, divergent, or was left
// mid-migration (Section 4.4). When promote is set (the target is the new
// primary after an ownership change) the pushed copy is promoted to the
// primary path afterwards.
func (n *Node) ensureTree(target simnet.Addr, t Track, promote bool) (simnet.Cost, error) {
	src, ok := n.localTreePath(t.Root)
	if !ok {
		return 0, nil
	}
	local := n.statTree(src)
	if promote {
		// Migration to the key's new primary. Versions arbitrate: a
		// settled remote copy at least as new as ours wins; otherwise we
		// surface the remote's replica-area copy if that is new enough, or
		// push ours (§4.3.1, with the §4.4 flag protocol inside pushTree).
		remote, cost, err := n.remoteStatTree(target, t.Root)
		if err != nil {
			return cost, err
		}
		if remote.Exists && !remote.Flag && remote.Ver >= t.Ver {
			return cost, nil
		}
		repRemote, c, err := n.remoteStatTree(target, RepPath(t.Root))
		cost = simnet.Seq(cost, c)
		if err != nil {
			return cost, err
		}
		if repRemote.Exists && !repRemote.Flag && repRemote.Ver >= t.Ver && !remote.Exists {
			_, c, err := n.promote(target, t)
			return simnet.Seq(cost, c), err
		}
		c, err = n.pushTree(target, t, src, true)
		return simnet.Seq(cost, c), err
	}

	// Primary -> replica refresh: the primary's copy is authoritative for
	// its version; an already-matching replica is left alone.
	remote, cost, err := n.remoteStatTree(target, RepPath(t.Root))
	if err != nil {
		return cost, err
	}
	if local.Same(remote) && remote.Ver == t.Ver {
		return cost, nil
	}
	c, err := n.pushTree(target, t, src, false)
	return simnet.Seq(cost, c), err
}

// pushTree copies the local subtree at src to target's replica area. The
// migration flag is created at the replicated-hierarchy root first and
// removed only after the copy completes, so a primary failure mid-migration
// is detectable (Section 4.4).
func (n *Node) pushTree(target simnet.Addr, t Track, src string, primary bool) (simnet.Cost, error) {
	var total simnet.Cost
	flag := path.Join(t.Root, MigrationFlag)

	step := func(op FSOp) error {
		c, err := n.mirrorArea(target, t, op, primary)
		total = simnet.Seq(total, c)
		return err
	}

	if err := step(FSOp{Kind: FSRemoveAll, Path: t.Root}); err != nil {
		return total, err
	}
	if err := step(FSOp{Kind: FSMkdirAll, Path: t.Root}); err != nil {
		return total, err
	}
	if err := step(FSOp{Kind: FSWriteFile, Path: flag}); err != nil {
		return total, err
	}
	werr := n.store.Walk(src, func(p string, a localfs.Attr, symTarget string) error {
		dst := t.Root + p[len(src):] // translate source prefix to dest root
		if dst == t.Root || dst == flag {
			return nil
		}
		switch a.Type {
		case localfs.TypeDir:
			return step(FSOp{Kind: FSMkdirAll, Path: dst})
		case localfs.TypeSymlink:
			return step(FSOp{Kind: FSSymlink, Path: dst, Target: symTarget})
		default:
			data, err := n.store.ReadFile(p)
			if err != nil {
				return err
			}
			return step(FSOp{Kind: FSWriteFile, Path: dst, Data: data})
		}
	})
	if werr != nil {
		return total, werr
	}
	err := step(FSOp{Kind: FSRemove, Path: flag})
	return total, err
}

// fetchTree pulls a remote replica-area copy of a subtree into this node's
// primary namespace via plain NFS reads, adopting the remote's version.
// Used when a freshly promoted primary discovers a replica holding a newer
// copy than the one it surfaced.
func (n *Node) fetchTree(from simnet.Addr, t Track, remoteVer uint64) (simnet.Cost, error) {
	var total simnet.Cost
	src := RepPath(t.Root)
	if err := n.store.RemoveAll(t.Root); err != nil {
		return total, err
	}
	if _, err := n.store.MkdirAll(t.Root); err != nil {
		return total, err
	}
	var walk func(remotePath, localPath string) error
	walk = func(remotePath, localPath string) error {
		fh, _, c, err := n.remoteLookupPath(from, remotePath)
		total = simnet.Seq(total, c)
		if err != nil {
			return err
		}
		ents, c, err := n.nfsc.ReaddirAll(from, fh, 256)
		total = simnet.Seq(total, c)
		if err != nil {
			return err
		}
		for _, ent := range ents {
			rp := remotePath + "/" + ent.Name
			lp := localPath + "/" + ent.Name
			switch ent.Type {
			case localfs.TypeDir:
				if _, err := n.store.MkdirAll(lp); err != nil {
					return err
				}
				if err := walk(rp, lp); err != nil {
					return err
				}
			case localfs.TypeSymlink:
				target, c, err := n.readLink(from, rp)
				total = simnet.Seq(total, c)
				if err != nil {
					return err
				}
				attr, err := n.store.LookupPath(path.Dir(lp))
				if err != nil {
					return err
				}
				if _, _, err := n.store.Symlink(attr.Ino, ent.Name, target); err != nil {
					return err
				}
			default:
				if ent.Name == MigrationFlag {
					continue
				}
				efh, eattr, c, err := n.remoteLookupPath(from, rp)
				total = simnet.Seq(total, c)
				if err != nil {
					return err
				}
				data := make([]byte, 0, eattr.Size)
				for off := int64(0); ; {
					chunk, eof, c, err := n.nfsc.Read(from, efh, off, 1<<20)
					total = simnet.Seq(total, c)
					if err != nil {
						return err
					}
					data = append(data, chunk...)
					off += int64(len(chunk))
					if eof {
						break
					}
				}
				if err := n.store.WriteFile(lp, data); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(src, t.Root); err != nil {
		return total, err
	}
	adopted := t
	adopted.Ver = remoteVer
	n.track(adopted, FSOp{Kind: FSMkdirAll, Path: t.Root})
	return total, nil
}

// adoptRoot makes this node's primary-path copy of a subtree current after
// it becomes the key's owner: surface the local replica-area copy, then
// check the current replica candidates for a newer version and fetch it if
// one exists. Runs on the cold path only (first access after an ownership
// change, or replica synchronization). The second result reports whether
// read-repair changed local state — callers holding handles into the
// subtree must re-resolve when it did.
func (n *Node) adoptRoot(t Track) (simnet.Cost, bool) {
	changed := n.promoteLocal(t)
	if t.Root == "" || t.Link != "" {
		return 0, changed
	}
	var total simnet.Cost
	myVer := n.verOf(t.Root)
	for _, rep := range n.overlay.ReplicaCandidates(n.cfg.Replicas) {
		st, c, err := n.remoteStatTree(rep.Addr, RepPath(t.Root))
		total = simnet.Seq(total, c)
		if err != nil || st.Flag || st.Ver <= myVer {
			continue
		}
		if !st.Exists {
			// The newer state is a deletion: adopt the tombstone.
			n.store.RemoveAll(t.Root)
			n.store.RemoveAll(RepPath(t.Root))
			dead := t
			dead.Ver = st.Ver
			n.track(dead, FSOp{Kind: FSRemoveAll, Path: t.Root})
			myVer = st.Ver
			changed = true
			continue
		}
		c, err = n.fetchTree(rep.Addr, t, st.Ver)
		total = simnet.Seq(total, c)
		if err == nil {
			myVer = st.Ver
			changed = true
		}
	}
	return total, changed
}

// demoteLocal moves this node's primary-path copy of a subtree (or link)
// back into the replica area, after ownership of the key moved elsewhere.
// Without this, a stale primary-path leftover would shadow the fresher
// replica-area copy the next time ownership returns here ("their copy on N
// becomes one of the replicas", Section 4.3.1).
func (n *Node) demoteLocal(t Track) {
	target := t.Root
	if t.Link != "" {
		target = t.Link
	}
	if target == "" || target == "/" {
		return
	}
	if _, err := n.store.LookupPath(target); err != nil {
		return
	}
	dst := RepPath(target)
	n.store.RemoveAll(dst)
	if _, err := n.store.MkdirAll(path.Dir(dst)); err != nil {
		return
	}
	spar, err := n.store.LookupPath(path.Dir(target))
	if err != nil {
		return
	}
	dpar, err := n.store.LookupPath(path.Dir(dst))
	if err != nil {
		return
	}
	if _, err := n.store.Rename(spar.Ino, path.Base(target), dpar.Ino, path.Base(dst)); err != nil {
		return
	}
	n.pruneUp(path.Dir(target))
}

// promote asks target to move its replica-area copy to the primary path and
// run read-repair against the current replica set. The changed result
// reports whether the target's state moved — handles resolved before the
// call may then be stale and must be re-resolved.
func (n *Node) promote(to simnet.Addr, t Track) (changed bool, cost simnet.Cost, err error) {
	e := wire.NewEncoder(128)
	e.PutUint32(kPromote)
	putTrack(e, t)
	resp, cost, err := n.rpc.Call(n.addr, to, KoshaService, e.Bytes())
	if err != nil {
		return false, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if cerr := codeToError(d.Uint32()); cerr != nil {
		return false, cost, cerr
	}
	return d.Bool(), cost, nil
}
