package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/maint"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/repl"
	"repro/internal/simnet"
)

// Config tunes one Kosha node. Zero values select the defaults used by the
// paper's experiments where it states them.
type Config struct {
	// DistributionLevel is L: how many levels of subdirectories are hashed
	// onto the overlay (Section 3.2). Minimum and default 1.
	DistributionLevel int
	// Replicas is K, the number of additional copies kept on leaf-set
	// neighbors (Section 4.2). Default 1 (the Table 1 setting).
	Replicas int
	// RedirectAttempts bounds capacity redirection retries (Section 3.3).
	// Default 4 (the Figure 6 sweet spot).
	RedirectAttempts int
	// UtilizationLimit is the store utilization beyond which new
	// directories are redirected elsewhere. Default 0.85.
	UtilizationLimit float64
	// Capacity is the contributed partition size in bytes; 0 = unlimited.
	Capacity int64
	// LeafSize is the Pastry leaf-set size l. Default 16.
	LeafSize int
	// InterposeCost is I, the fixed per-operation cost of the loopback
	// interposition (kernel crossing + local socket to koshad + handle
	// table work, Section 6.1.2). Default 300µs.
	InterposeCost simnet.Cost
	// LoopbackBytesPerSec is the data rate of the user-space loopback
	// path (kernel NFS client -> koshad). The SFS-toolkit loopback server
	// the paper builds on moves data through user space, which is why
	// Kosha on one node is slightly slower than plain NFS rather than
	// faster (Table 1). Default 12.5 MB/s, on par with the 100 Mb/s LAN.
	LoopbackBytesPerSec float64
	// P2PLookupCost is the fixed cost of one koshad -> local p2p component
	// node lookup (the local socket round trip plus substrate processing;
	// "a delay caused by the lookup for the appropriate storage node",
	// Section 4). Charged per overlay route issued on the client path, on
	// top of the per-hop network cost. Default 1ms.
	P2PLookupCost simnet.Cost
	// ReadFromReplicas spreads read operations across the primary and its
	// K replica holders instead of always reading from the primary — the
	// optimization Section 4.2 leaves as an exploration ("allow at least
	// read operations to be served from any one of the K replicas").
	// Writes still serialize through the primary.
	ReadFromReplicas bool
	// StreamChunk is the chunk size of the streaming data path: readahead
	// windows and pull-repair tree fetches move multiples of it per round
	// trip. Default repl.PushChunk (1 MiB), keeping the client path and the
	// replication engine on one tunable.
	StreamChunk int
	// ReadaheadChunks is N, the readahead window in StreamChunk-sized
	// pieces a mount keeps in flight ahead of a sequential reader (one
	// READSTREAM round trip per window). 0 (default) disables readahead:
	// every READ is one stop-and-wait round trip.
	ReadaheadChunks int
	// WriteBackBytes is the high-water mark of the per-handle write-back
	// buffer. 0 (default) keeps writes write-through — each WRITE applies
	// synchronously, which the chaos oracle's determinism relies on. >0
	// buffers and coalesces adjacent writes client-side, flushing on high
	// water, Commit, or Close (close-to-open preserved; flush errors
	// surface at close like NFSv3 COMMIT).
	WriteBackBytes int
	// SyncReplication charges replica fan-out on the client-visible
	// critical path. Off by default: the primary replies after its local
	// apply and mirrors propagate off the measured path, matching the
	// small overheads the paper reports with replication enabled.
	SyncReplication bool
	// Disk is the cost model for the contributed partition.
	Disk simnet.DiskModel
	// AutoSync runs replica maintenance from overlay membership callbacks.
	// Default on; the cluster harness may disable it and drive SyncReplicas
	// explicitly for deterministic scheduling.
	AutoSync bool
	// noAutoSyncSet distinguishes "zero value = default on" from off.
	NoAutoSync bool
	// FullTreePush restores the legacy remove-and-recopy replica push in
	// place of the Merkle delta protocol. Kept as the baseline arm of the
	// sync experiment (koshabench -exp sync).
	FullTreePush bool
	// WholeFileSync disables block-level manifest negotiation in the
	// replication engine: changed files ship and fetch whole (the
	// pre-chunk-store behavior). Kept as the baseline arm of the dedup
	// experiment (koshabench -exp dedup); implied by FullTreePush.
	WholeFileSync bool
	// RingCacheTTL bounds how long a mount may serve a memoized ring walk
	// (the EnumerateRing behind root READDIR) before re-walking. The cache
	// is additionally invalidated by overlay-health events (joins,
	// departures, revivals). Default 2s; negative disables the cache.
	RingCacheTTL time.Duration
	// AttrCacheTTL bounds how long a mount may serve cached attributes
	// without revalidating, mirroring the kernel NFS client's
	// acregmin/acdirmin window the paper relies on for its low overhead
	// (Section 6.1). Default 3s; negative disables attribute caching.
	AttrCacheTTL time.Duration
	// NameCacheTTL bounds per-directory name-cache (dnlc) entries the same
	// way. Default 3s; negative disables the name cache.
	NameCacheTTL time.Duration
	// NoMetadataCache turns off both client-side metadata caches,
	// regardless of the TTL fields. Used by ablation benches.
	NoMetadataCache bool
	// WallClockStats records per-op latency histograms in wall time rather
	// than simulated cost. koshad sets it when running over tcpnet, where
	// real elapsed time is the number of interest; simulated runs leave it
	// off so histograms are deterministic.
	WallClockStats bool
	// TraceBufSize caps the per-node ring buffer of recent operation
	// traces. 0 selects obs.DefaultTraceBuf; negative disables tracing.
	TraceBufSize int
	// SlowOpNS arms the slow-op flight recorder: finished traces whose total
	// latency meets or exceeds this many nanoseconds are copied into a
	// separate ring that ordinary op chatter never evicts, so the outliers
	// behind a latency SLO breach stay inspectable (koshactl trace -slow).
	// 0 (default) disables the recorder.
	SlowOpNS int64
	// Seed drives every seeded random choice the node makes (currently the
	// retry backoff jitter), so a failing run is reproducible from one
	// logged value. The cluster harness derives per-node seeds from its own
	// Options.Seed.
	Seed uint64
	// RetryAttempts is the total number of tries (first send + retries) the
	// RPC retrier gives a transiently unreachable peer before surfacing the
	// error. Default 3; negative disables retries (1 try).
	RetryAttempts int
	// RetryBackoff is the base pause before the first retry; it doubles per
	// retry up to RetryBackoffCap, jittered. Charged as simulated cost.
	// Default 5ms.
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential backoff. Default 80ms.
	RetryBackoffCap time.Duration

	// Background maintenance (internal/maint). MaintScrub enables the
	// anti-entropy scrub loop; MaintRebalance the capacity-driven
	// rebalancer. Both are off by default — the engine is always
	// constructed (Node.Maint), but Tick does nothing until a loop is
	// enabled, and nothing calls Tick unless a harness or daemon does.
	MaintScrub     bool
	MaintRebalance bool
	// MaintTokens is the shared per-tick work budget (default 64);
	// MaintVerifyFiles / MaintVerifyBlocks bound the scrub's local
	// verification windows per round (defaults 4 / 32; negative disables).
	MaintTokens       int
	MaintVerifyFiles  int
	MaintVerifyBlocks int
	// MaintHighWater arms the rebalancer (default 0.80); MaintLowWater is
	// where a shedding round stops (default 0.60). MaintSaltProbes bounds
	// re-salting attempts per victim (default 4); MaintMoveBytes caps the
	// bytes migrated per round (default 8 MiB).
	MaintHighWater  float64
	MaintLowWater   float64
	MaintSaltProbes int
	MaintMoveBytes  int64
}

func (c Config) withDefaults() Config {
	if c.DistributionLevel < 1 {
		c.DistributionLevel = 1
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	} else if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.RedirectAttempts == 0 {
		c.RedirectAttempts = 4
	}
	if c.UtilizationLimit == 0 {
		c.UtilizationLimit = 0.85
	}
	if c.LeafSize == 0 {
		c.LeafSize = pastry.DefaultLeafSize
	}
	if c.InterposeCost == 0 {
		c.InterposeCost = simnet.Cost(210_000) // 210µs
	}
	if c.LoopbackBytesPerSec == 0 {
		c.LoopbackBytesPerSec = 12.5e6
	}
	if c.P2PLookupCost == 0 {
		c.P2PLookupCost = simnet.Cost(4_000_000) // 4ms
	}
	if c.Disk == (simnet.DiskModel{}) {
		c.Disk = simnet.Disk7200
	}
	if c.StreamChunk <= 0 {
		c.StreamChunk = repl.PushChunk
	}
	if c.ReadaheadChunks < 0 {
		c.ReadaheadChunks = 0
	}
	if c.WriteBackBytes < 0 {
		c.WriteBackBytes = 0
	}
	c.AutoSync = !c.NoAutoSync
	if c.AttrCacheTTL == 0 {
		c.AttrCacheTTL = 3 * time.Second
	}
	if c.NameCacheTTL == 0 {
		c.NameCacheTTL = 3 * time.Second
	}
	if c.NoMetadataCache {
		c.AttrCacheTTL = -1
		c.NameCacheTTL = -1
	}
	if c.TraceBufSize == 0 {
		c.TraceBufSize = obs.DefaultTraceBuf
	}
	if c.RingCacheTTL == 0 {
		c.RingCacheTTL = 2 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	} else if c.RetryAttempts < 1 {
		c.RetryAttempts = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.RetryBackoffCap == 0 {
		c.RetryBackoffCap = 80 * time.Millisecond
	}
	return c
}

// route asks the local p2p component for the node owning key, charging the
// substrate lookup cost on top of the overlay hops. Every route feeds the
// route histogram and hop counters; when the caller is tracing, the hop
// path (with prefix-match depths against the key) is appended to the trace.
func (n *Node) route(tr *obs.Trace, key id.ID) (pastry.RouteResult, simnet.Cost, error) {
	res, err := n.overlay.RouteCtx(tr.Ctx(), key)
	n.routeCount.Add(1)
	n.routeHops.Add(uint64(res.Hops))
	n.routeHist.Observe(time.Duration(res.Cost))
	if tr != nil {
		for _, h := range res.Path {
			tr.AddHop(h.ID.String(), string(h.Addr), id.SharedPrefixLen(h.ID, key))
		}
		tr.AddSpan("route", string(res.Node.Addr), time.Duration(res.Cost))
	}
	return res, simnet.Seq(res.Cost, n.cfg.P2PLookupCost), err
}

// LoopbackXfer returns the loopback-path cost of moving n payload bytes
// between the kernel NFS client and koshad.
func (c Config) LoopbackXfer(n int) simnet.Cost {
	if c.LoopbackBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return simnet.Cost(float64(n) / c.LoopbackBytesPerSec * 1e9)
}

// Place is a resolved location for a virtual directory: the primary node
// that stores its controlling hierarchy, the placement name whose hash
// selected that node, and the hierarchy's physical storage root there.
type Place struct {
	Node  simnet.Addr
	Name  string   // controlling placement name ("" for the virtual root)
	Store string   // physical storage root of the controlling hierarchy
	Rest  []string // virtual components below the controlling directory
	VRoot bool     // the virtual root itself (no single node)
}

// PN returns the controlling placement name.
func (p Place) PN() string { return p.Name }

// PhysDir returns the physical store path of the directory itself.
func (p Place) PhysDir() string {
	if len(p.Rest) == 0 {
		return p.Store
	}
	if p.Store == "/" || p.Store == "" {
		return "/" + strings.Join(p.Rest, "/")
	}
	return p.Store + "/" + strings.Join(p.Rest, "/")
}

// SubtreeRoot returns the physical path of the replicated-hierarchy root
// (the controlling directory).
func (p Place) SubtreeRoot() string {
	if p.Store == "" {
		return "/"
	}
	return p.Store
}

// Node is one Kosha participant: contributed store + NFS server + Pastry
// overlay node + the koshad logic tying them together (Figure 4). The
// replication/tracking engine lives in internal/repl; the node adapts its
// overlay and RPC clients to the engine's narrow interfaces (see peer.go).
type Node struct {
	cfg     Config
	net     simnet.Transport
	rpc     *retrier // retrying wrapper over net for client-path RPCs
	addr    simnet.Addr
	overlay *pastry.Node
	store   localfs.FileSystem
	nsrv    *nfs.Server
	nfsc    nfs.Client
	rep     *repl.Engine

	mu           sync.Mutex
	rootHandles  map[simnet.Addr]nfs.Handle
	replicaCache map[string][]simnet.Addr // subtree root -> replica holders

	cacheMu  sync.Mutex
	dirCache map[string]Place // virtual dir path -> place

	// Observability: the node-wide metrics registry (shared with the NFS
	// client), the operation tracer, the time-series sampler, and the
	// overlay-health event log. Hot-path metrics are cached as struct fields.
	reg        *obs.Registry
	tracer     *obs.Tracer
	sampler    *obs.Sampler
	events     *obs.EventLog
	routeCount *obs.Counter
	routeHops  *obs.Counter
	routeHist  *obs.Histogram
	opsTotal   *obs.Counter
	opErrors   *obs.Counter
	opHists    [obs.OpcCount]*obs.Histogram // cached "op.<OP>" histograms, indexed by OpCode
	repCount   *obs.Counter
	repFanout  *obs.Counter
	repHist    *obs.Histogram

	// Streaming data-path counters (per-op, node-wide): readahead buffer
	// hits and prefetched-then-discarded bytes, write-back absorbed writes
	// and flush round trips.
	raHits      *obs.Counter
	raWasted    *obs.Counter
	wbCoalesced *obs.Counter
	wbFlushes   *obs.Counter

	// maintEng is the background maintenance engine (scrub + rebalancer).
	// Always constructed; its loops run only when enabled and ticked.
	maintEng *maint.Engine

	storeSeq atomic.Uint64 // storage-root allocation counter
	gen      uint64        // store incarnation counter

	// ringEpoch versions this node's view of overlay membership: bumped on
	// every leaf-set change, node invalidation, and revival. Mount-level
	// ring-walk caches key on it so a membership event invalidates them
	// immediately, ahead of the TTL.
	ringEpoch atomic.Uint64
}

// nodeHistNames are the histogram keys every node registers at
// construction: route and replicate first, then the "op.<OP>" set in
// OpCode order. Built once per process so node construction (frequent in
// simulated clusters) does no string work.
var nodeHistNames = func() []string {
	names := []string{"op." + obs.OpRoute, "op." + obs.OpReplicate}
	for c := obs.OpCode(0); c < obs.OpcCount; c++ {
		names = append(names, "op."+c.String())
	}
	return names
}()

// NewNode builds a Kosha node with the given network address and overlay
// identifier, attaches its services, and returns it un-joined. The
// contributed store is in-memory; use NewNodeWithStore for a persistent
// backend.
func NewNode(addr simnet.Addr, nodeID id.ID, net simnet.Transport, cfg Config) *Node {
	c := cfg.withDefaults()
	return NewNodeWithStore(addr, nodeID, net, cfg, localfs.New(c.Capacity, c.Disk))
}

// NewNodeWithStore builds a Kosha node over a caller-supplied contributed
// store (e.g. internal/diskfs for a persistent partition).
func NewNodeWithStore(addr simnet.Addr, nodeID id.ID, net simnet.Transport, cfg Config, store localfs.FileSystem) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:          cfg,
		net:          net,
		addr:         addr,
		store:        store,
		rootHandles:  make(map[simnet.Addr]nfs.Handle),
		replicaCache: make(map[string][]simnet.Addr),
		dirCache:     make(map[string]Place),
		gen:          1,
	}
	n.reg = obs.NewRegistry()
	tbuf := cfg.TraceBufSize
	if tbuf < 0 {
		tbuf = 0
	}
	n.tracer = obs.NewTracer(tbuf)
	// Trace/span ids come from a per-node seeded stream: mixing the run seed
	// with the address keeps ids unique across the cluster yet replayable.
	n.tracer.SeedIDs(cfg.Seed ^ addrHash(addr))
	n.tracer.SetSlowThreshold(cfg.SlowOpNS)
	n.sampler = obs.NewSampler(n.reg, 0)
	n.events = obs.NewEventLog(0)
	n.routeCount = n.reg.Counter("route.count")
	n.routeHops = n.reg.Counter("route.hops")
	n.opsTotal = n.reg.Counter("ops.total")
	n.opErrors = n.reg.Counter("ops.errors")
	n.repCount = n.reg.Counter("replicate.count")
	n.repFanout = n.reg.Counter("replicate.fanout")
	n.raHits = n.reg.Counter("io.readahead.hits")
	n.raWasted = n.reg.Counter("io.readahead.wasted")
	n.wbCoalesced = n.reg.Counter("io.writeback.coalesced")
	n.wbFlushes = n.reg.Counter("io.writeback.flushes")
	hists := n.reg.Histograms(nodeHistNames...)
	n.routeHist, n.repHist = hists[0], hists[1]
	copy(n.opHists[:], hists[2:])
	n.nsrv = nfs.NewServer(n.store, n.gen)
	// Client-path RPCs (NFS forwarding and the kosha service) go through a
	// retrying caller so transient message loss does not read as node death;
	// the overlay keeps the raw transport because its liveness probes need
	// to see real timeouts.
	n.rpc = newRetrier(net, cfg, n.reg)
	n.nfsc = nfs.NewClientWithRegistry(n.rpc, addr, n.reg)
	n.rep = repl.New(repl.Options{
		Self:      addr,
		Store:     store,
		Overlay:   engineOverlay{n},
		Peer:      enginePeer{n},
		Replicas:  cfg.Replicas,
		Key:       Key,
		Events:    n.events,
		Registry:  n.reg,
		Tracer:    n.tracer,
		FullPush:  cfg.FullTreePush,
		WholeFile: cfg.WholeFileSync,
	})
	n.overlay = pastry.NewNode(nodeID, addr, net, cfg.LeafSize)
	n.overlay.OnLeafSetChange(n.onLeafChange)
	n.attach()
	n.maintEng = maint.New(maint.Options{
		Host:          maintHost{n},
		Registry:      n.reg,
		Events:        n.events,
		Replicas:      cfg.Replicas,
		Scrub:         cfg.MaintScrub,
		Rebalance:     cfg.MaintRebalance,
		TokensPerTick: cfg.MaintTokens,
		VerifyFiles:   cfg.MaintVerifyFiles,
		VerifyBlocks:  cfg.MaintVerifyBlocks,
		HighWater:     cfg.MaintHighWater,
		LowWater:      cfg.MaintLowWater,
		SaltProbes:    cfg.MaintSaltProbes,
		MoveBytes:     cfg.MaintMoveBytes,
	})
	return n
}

func (n *Node) attach() {
	n.overlay.Attach()
	// Feed the contributed store's capacity accounting to the overlay so it
	// rides the leaf-set keep-alive traffic (the rebalancer's gossip view).
	// Done here because Revive replaces the overlay instance.
	n.overlay.SetLoadProvider(n.loadProvider)
	n.nsrv.Attach(n.net, n.addr)
	// On context-aware transports the kosha service registers its
	// ctx-carrying handler (serveApply forwards the caller's trace into the
	// mirror fan-out) and the node installs its span sink, which records a
	// server span for EVERY inbound traced RPC — including plainly-registered
	// services like nfs and pastry, whose spans the transport times for them.
	if ct, ok := n.net.(simnet.CtxTransport); ok {
		ct.RegisterCtx(n.addr, KoshaService, n.handleKoshaCtx)
		ct.SetSpanSink(n.addr, nodeSink{n})
	} else {
		n.net.Register(n.addr, KoshaService, n.handleKosha)
	}
}

// newStoreRoot allocates a fresh, node-unique physical storage root for a
// hierarchy with the given placement name. The leading control byte keeps
// these roots out of virtual listings and out of reach of user names.
func (n *Node) newStoreRoot(pn string) string {
	c := n.storeSeq.Add(1)
	return "/" + ChainSep + pn + "." + Salt(string(n.addr), int(c))
}

// Addr returns the node's network address.
func (n *Node) Addr() simnet.Addr { return n.addr }

// NFSStats returns cumulative NFS RPC counters for this node's client side
// (every mount on the node shares it), letting experiments report rpcs/op.
func (n *Node) NFSStats() nfs.ClientStats { return n.nfsc.Stats() }

// ResetNFSStats zeroes the node's NFS RPC counters.
func (n *Node) ResetNFSStats() { n.nfsc.ResetStats() }

// NFSProcCount returns how many RPCs of one procedure this node has issued.
func (n *Node) NFSProcCount(p nfs.Proc) uint64 { return n.nfsc.ProcCount(p) }

// Obs returns the node-wide metrics registry (per-op latency histograms,
// route/replicate/failover counters, and the NFS client's RPC counters).
func (n *Node) Obs() *obs.Registry { return n.reg }

// Tracer returns the node's operation tracer (nil traces when disabled).
func (n *Node) Tracer() *obs.Tracer { return n.tracer }

// Sampler returns the node's time-series metrics sampler. It is created
// stopped; koshad starts it wall-clock, harnesses drive TickNow directly.
func (n *Node) Sampler() *obs.Sampler { return n.sampler }

// Events returns the node's overlay-health event log.
func (n *Node) Events() *obs.EventLog { return n.events }

// ID returns the node's overlay identifier.
func (n *Node) ID() id.ID { return n.overlay.Info().ID }

// Overlay exposes the Pastry node (cluster harness, tests).
func (n *Node) Overlay() *pastry.Node { return n.overlay }

// Store exposes the contributed partition (tests, experiments).
func (n *Node) Store() localfs.FileSystem { return n.store }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Join enters the overlay via seed ("" starts a new overlay).
func (n *Node) Join(seed simnet.Addr) (simnet.Cost, error) {
	return n.overlay.Bootstrap(seed)
}

// onLeafChange reacts to overlay membership changes: location caches become
// suspect, and replica placement must be re-established (Section 4.3).
func (n *Node) onLeafChange(c pastry.LeafSetChange) {
	for _, p := range c.Joined {
		n.events.Add(obs.EvJoin, string(p.Addr), p.ID.Short())
	}
	for _, p := range c.Left {
		n.events.Add(obs.EvDeparture, string(p.Addr), p.ID.Short())
	}
	n.events.Add(obs.EvCachePurge, string(n.addr), "leaf-set change")
	n.ringEpoch.Add(1)
	n.cacheMu.Lock()
	n.dirCache = make(map[string]Place)
	n.cacheMu.Unlock()
	n.mu.Lock()
	n.replicaCache = make(map[string][]simnet.Addr)
	n.mu.Unlock()
	if n.cfg.AutoSync {
		n.SyncReplicas()
	}
}

// invalidateNode drops all client-side state naming a (presumed dead) node
// and tells the overlay, so re-resolution routes around it (Section 4.4).
func (n *Node) invalidateNode(dead simnet.Addr) {
	n.ringEpoch.Add(1)
	n.mu.Lock()
	delete(n.rootHandles, dead)
	n.replicaCache = make(map[string][]simnet.Addr)
	n.mu.Unlock()
	n.cacheMu.Lock()
	for k, p := range n.dirCache {
		if p.Node == dead {
			delete(n.dirCache, k)
		}
	}
	n.cacheMu.Unlock()
	n.overlay.MarkDead(dead)
}

// Fail crashes the node (network-level) for fault-injection tests; it is a
// no-op on transports without failure injection.
func (n *Node) Fail() {
	if d, ok := n.net.(simnet.Downer); ok {
		d.SetDown(n.addr, true)
	}
}

// Revive restarts a crashed node with a fresh overlay identifier, purging
// all Kosha data: "since a node can be revived with a different identifier
// ... all Kosha data on a revived node is purged" (Section 4.3.2).
func (n *Node) Revive(newID id.ID, seed simnet.Addr) (simnet.Cost, error) {
	if d, ok := n.net.(simnet.Downer); ok {
		d.SetDown(n.addr, false)
	}
	n.store.RemoveAll("/")
	n.rep.Reset()
	if n.maintEng != nil {
		n.maintEng.Reset()
	}
	n.ringEpoch.Add(1)
	n.mu.Lock()
	n.gen++
	n.rootHandles = make(map[simnet.Addr]nfs.Handle)
	n.replicaCache = make(map[string][]simnet.Addr)
	n.mu.Unlock()
	n.cacheMu.Lock()
	n.dirCache = make(map[string]Place)
	n.cacheMu.Unlock()
	n.nsrv.Bump()
	n.overlay = pastry.NewNode(newID, n.addr, n.net, n.cfg.LeafSize)
	n.overlay.OnLeafSetChange(n.onLeafChange)
	n.attach()
	return n.Join(seed)
}

// Repl exposes the node's replication engine (tests, experiments).
func (n *Node) Repl() *repl.Engine { return n.rep }

// SyncReplicas re-establishes the replication invariant for every subtree
// and level-1 link this node tracks (Section 4.3); see repl.Engine.Sync.
func (n *Node) SyncReplicas() simnet.Cost { return n.rep.Sync() }

// TrackedRoots returns a snapshot of the subtree roots this node holds
// (primary or replica), for tests and experiments.
func (n *Node) TrackedRoots() map[string]string { return n.rep.TrackedRoots() }

// The thin wrappers below keep core-internal call sites (and white-box
// tests) reading as before while the implementation lives in the engine.

func (n *Node) isDead(root string) bool       { return n.rep.IsDead(root) }
func (n *Node) verOf(key string) uint64       { return n.rep.VerOf(key) }
func (n *Node) track(t Track, op FSOp)        { n.rep.Track(t, op) }
func (n *Node) statTree(root string) TreeStat { return n.rep.StatLocal(root) }
func (n *Node) promoteLocal(t Track) bool     { return n.rep.PromoteLocal(t) }
func (n *Node) demoteLocal(t Track)           { n.rep.DemoteLocal(t) }

func (n *Node) adoptRoot(tc obs.TraceContext, t Track) (simnet.Cost, bool) {
	return n.rep.AdoptRoot(tc, t)
}

func (n *Node) nsrvGen() uint64 {
	return n.nsrv.Root().Gen
}
