package core

import (
	"errors"
	"fmt"
	"path"
	"strings"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// ErrRootOnlyDirs is returned for operations that would create non-directory
// entries directly under the virtual root; Kosha's root holds only
// distributed directories (the paper's /kosha/$USER layout, Section 3).
var ErrRootOnlyDirs = errors.New("kosha: the virtual root may only contain directories")

// noteErr reacts to a failed RPC against addr: unreachable or stale-handle
// errors invalidate every cache naming that node so re-resolution routes
// around it (the detection half of Section 4.4's transparent fault
// handling). The error is returned unchanged.
func (n *Node) noteErr(addr simnet.Addr, err error) error {
	if err != nil && (errors.Is(err, simnet.ErrUnreachable) || nfs.IsStatus(err, nfs.ErrStale)) {
		n.invalidateNode(addr)
	}
	return err
}

// remoteLookupPath resolves a physical path on a remote store, fetching and
// caching the export's root handle. A stale cached handle (the remote store
// was purged and re-incarnated) is refreshed once.
func (n *Node) remoteLookupPath(tc obs.TraceContext, to simnet.Addr, phys string) (nfs.Handle, localfs.Attr, simnet.Cost, error) {
	fh, attr, _, cost, err := n.remoteLookupPathIdx(tc, to, phys)
	return fh, attr, cost, err
}

// remoteLookupPathIdx additionally reports how many components resolved.
func (n *Node) remoteLookupPathIdx(tc obs.TraceContext, to simnet.Addr, phys string) (nfs.Handle, localfs.Attr, int, simnet.Cost, error) {
	var total simnet.Cost
	for attempt := 0; ; attempt++ {
		root, c, err := n.rootHandle(to)
		total = simnet.Seq(total, c)
		if err != nil {
			return nfs.Handle{}, localfs.Attr{}, 0, total, n.noteErr(to, err)
		}
		fh, attr, idx, c, err := n.nfsCtx(tc).LookupPathIdx(to, root, phys)
		total = simnet.Seq(total, c)
		if err != nil && nfs.IsStatus(err, nfs.ErrStale) && attempt == 0 {
			n.dropRootHandle(to)
			continue
		}
		if err != nil && !nfs.IsStatus(err, nfs.ErrStale) {
			err = n.noteErr(to, err)
		}
		return fh, attr, idx, total, err
	}
}

// pathComponents counts the components of a physical path.
func pathComponents(p string) int {
	n := 0
	for _, part := range strings.Split(p, "/") {
		if part != "" {
			n++
		}
	}
	return n
}

// readLink reads a symlink target on a remote store by physical path.
func (n *Node) readLink(tc obs.TraceContext, to simnet.Addr, phys string) (string, simnet.Cost, error) {
	fh, attr, cost, err := n.remoteLookupPath(tc, to, phys)
	if err != nil {
		return "", cost, err
	}
	if attr.Type != localfs.TypeSymlink {
		return "", cost, &nfs.Error{Proc: nfs.ProcReadlink, Status: nfs.ErrInval}
	}
	target, c, err := n.nfsCtx(tc).Readlink(to, fh)
	return target, simnet.Seq(cost, c), err
}

func (n *Node) cacheGet(vpath string) (Place, bool) {
	n.cacheMu.Lock()
	defer n.cacheMu.Unlock()
	p, ok := n.dirCache[vpath]
	return p, ok
}

func (n *Node) cachePut(vpath string, p Place) {
	n.cacheMu.Lock()
	n.dirCache[vpath] = p
	n.cacheMu.Unlock()
}

func (n *Node) cacheDrop(vpath string) {
	n.cacheMu.Lock()
	delete(n.dirCache, vpath)
	n.cacheMu.Unlock()
}

// ResolveDir locates the virtual directory whose components are vdirs,
// following the mapping of Section 3.1 with special-link redirection
// (Section 3.3): hash the controlling directory's placement name, route to
// the numerically closest node, and follow any special link found in the
// parent directory. Resolved levels are cached, mirroring koshad's practice
// of "record[ing] the information needed for future accesses" (Section 4).
func (n *Node) ResolveDir(vdirs []string) (Place, simnet.Cost, error) {
	return n.resolveDir(nil, vdirs)
}

// resolveDir is ResolveDir with an optional trace receiving the route hops.
func (n *Node) resolveDir(tr *obs.Trace, vdirs []string) (Place, simnet.Cost, error) {
	if len(vdirs) == 0 {
		return Place{VRoot: true, Store: "/"}, 0, nil
	}
	d := ControllingDepth(len(vdirs), n.cfg.DistributionLevel)
	cur := Place{VRoot: true, Store: "/"}
	var total simnet.Cost
	usedCache := false
	retried := false
restart:
	for i := 1; i <= d; i++ {
		vpath := JoinVirtual(vdirs[:i])
		if pl, ok := n.cacheGet(vpath); ok {
			cur = pl
			usedCache = true
			continue
		}
		name := vdirs[i-1]
		var probeNode simnet.Addr
		var probeDir string
		if i == 1 {
			res, c, err := n.route(tr, Key(name))
			total = simnet.Seq(total, c)
			if err != nil {
				return Place{}, total, fmt.Errorf("kosha: resolve %s: %w", vpath, err)
			}
			probeNode, probeDir = res.Node.Addr, "/"
		} else {
			probeNode, probeDir = cur.Node, cur.PhysDir()
		}
		probePath := path.Join(probeDir, name)
		wantIdx := pathComponents(probePath) - 1 // components before the name
		_, attr, idx, cost, err := n.remoteLookupPathIdx(tr.Ctx(), probeNode, probePath)
		total = simnet.Seq(total, cost)
		if nfs.IsStatus(err, nfs.ErrNoEnt) && idx >= wantIdx {
			// Only the name itself is missing; the node may hold an
			// unpromoted copy after a fresh ownership change.
			var t Track
			if i == 1 {
				t = Track{PN: name, Root: path.Join("/", name), Link: path.Join("/", name)}
			} else {
				t = Track{PN: cur.PN(), Root: cur.SubtreeRoot()}
			}
			_, c2, perr := n.promote(tr.Ctx(), probeNode, t)
			total = simnet.Seq(total, c2)
			if perr == nil {
				_, attr, idx, cost, err = n.remoteLookupPathIdx(tr.Ctx(), probeNode, probePath)
				total = simnet.Seq(total, cost)
			}
		}
		if nfs.IsStatus(err, nfs.ErrNoEnt) && idx < wantIdx && usedCache && !retried {
			// The cached level's storage root dangles: the directory was
			// renamed or removed elsewhere (renames relocate storage by
			// design). Re-resolve the whole chain from scratch once.
			retried = true
			usedCache = false
			for j := 1; j <= d; j++ {
				n.cacheDrop(JoinVirtual(vdirs[:j]))
			}
			cur = Place{VRoot: true, Store: "/"}
			goto restart
		}
		if err != nil {
			return Place{}, total, err
		}
		var next Place
		switch attr.Type {
		case localfs.TypeDir:
			// A real directory at the probe location only occurs for an
			// unsalted level-1 home sitting at its own hash target; deeper
			// distributed children are always behind special links.
			if i != 1 {
				return Place{}, total, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNotDir}
			}
			next = Place{Node: probeNode, Name: name, Store: "/" + name}
		case localfs.TypeSymlink:
			// Special link: follow to the placement name and storage root.
			// A user symlink (no marker) is not a directory.
			target, cost, err := n.readLink(tr.Ctx(), probeNode, path.Join(probeDir, name))
			total = simnet.Seq(total, cost)
			if err != nil {
				return Place{}, total, err
			}
			pn, store, ok := ParseLinkTarget(target)
			if !ok {
				return Place{}, total, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNotDir}
			}
			res, c, err := n.route(tr, Key(pn))
			total = simnet.Seq(total, c)
			if err != nil {
				return Place{}, total, err
			}
			next = Place{Node: res.Node.Addr, Name: pn, Store: store}
		default:
			return Place{}, total, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNotDir}
		}
		n.cachePut(vpath, next)
		cur = next
	}
	cur.Rest = append([]string(nil), vdirs[d:]...)
	return cur, total, nil
}

// ResolvePath is ResolveDir on a slash-separated virtual path.
func (n *Node) ResolvePath(vpath string) (Place, simnet.Cost, error) {
	return n.ResolveDir(SplitVirtual(vpath))
}
