package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/simnet"
)

// testCluster builds n joined, stabilized Kosha nodes.
func testCluster(t testing.TB, n int, seed uint64, cfg Config) (*simnet.Network, []*Node) {
	t.Helper()
	net := simnet.New(simnet.LAN100)
	state := seed
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		addr := simnet.Addr(fmt.Sprintf("k%d", i))
		nodes[i] = NewNode(addr, id.Rand128(&state), net, cfg)
		var boot simnet.Addr
		if i > 0 {
			boot = nodes[0].Addr()
		}
		if _, err := nodes[i].Join(boot); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
	}
	stabilizeAll(nodes)
	return net, nodes
}

func stabilizeAll(nodes []*Node) {
	for round := 0; round < 3; round++ {
		for _, nd := range nodes {
			nd.Overlay().Stabilize()
		}
	}
	for _, nd := range nodes {
		nd.SyncReplicas()
	}
}

func TestSingleNodeBasicOps(t *testing.T) {
	_, nodes := testCluster(t, 1, 1, Config{})
	m := nodes[0].NewMount()

	// Mkdir at root, create a file, write, read back.
	dirVH, dattr, _, err := m.Mkdir(m.Root(), "alice", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if dattr.Type != localfs.TypeDir {
		t.Fatalf("mkdir attr %+v", dattr)
	}
	fvh, _, _, err := m.Create(dirVH, "notes.txt", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello kosha")
	if _, _, err := m.Write(fvh, 0, payload); err != nil {
		t.Fatal(err)
	}
	data, eof, _, err := m.Read(fvh, 0, 100)
	if err != nil || !eof || !bytes.Equal(data, payload) {
		t.Fatalf("read %q eof=%v err=%v", data, eof, err)
	}
	attr, _, err := m.Getattr(fvh)
	if err != nil || attr.Size != int64(len(payload)) {
		t.Fatalf("getattr %+v err=%v", attr, err)
	}
	// Lookup through a fresh handle chain.
	vh2, attr2, _, err := m.LookupPath("/alice/notes.txt")
	if err != nil || attr2.Size != attr.Size {
		t.Fatalf("lookupPath %+v err=%v", attr2, err)
	}
	_ = vh2
	// Listing.
	ents, _, err := m.Readdir(dirVH)
	if err != nil || len(ents) != 1 || ents[0].Name != "notes.txt" {
		t.Fatalf("readdir %v err=%v", ents, err)
	}
	roots, _, err := m.Readdir(m.Root())
	if err != nil || len(roots) != 1 || roots[0].Name != "alice" || roots[0].Type != localfs.TypeDir {
		t.Fatalf("root readdir %v err=%v", roots, err)
	}
	// Remove.
	if _, err := m.Remove(dirVH, "notes.txt"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.LookupPath("/alice/notes.txt"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("after remove err = %v", err)
	}
	if _, err := m.Rmdir(m.Root(), "alice"); err != nil {
		t.Fatal(err)
	}
	roots, _, _ = m.Readdir(m.Root())
	if len(roots) != 0 {
		t.Fatalf("root not empty after rmdir: %v", roots)
	}
}

func TestRootOnlyDirectories(t *testing.T) {
	_, nodes := testCluster(t, 1, 2, Config{})
	m := nodes[0].NewMount()
	if _, _, _, err := m.Create(m.Root(), "f", 0o644, false); err != ErrRootOnlyDirs {
		t.Fatalf("create at root err = %v", err)
	}
	if _, _, err := m.Symlink(m.Root(), "l", "t"); err != ErrRootOnlyDirs {
		t.Fatalf("symlink at root err = %v", err)
	}
}

func TestSingleSystemImageAcrossMounts(t *testing.T) {
	_, nodes := testCluster(t, 4, 3, Config{})
	mA := nodes[0].NewMount()
	mB := nodes[3].NewMount()

	if _, err := mA.WriteFile("/shared/doc.txt", []byte("from A")); err != nil {
		t.Fatal(err)
	}
	data, _, err := mB.ReadFile("/shared/doc.txt")
	if err != nil || string(data) != "from A" {
		t.Fatalf("cross-mount read %q err=%v", data, err)
	}
	// Visible in B's root listing too.
	ents, _, err := mB.Readdir(mB.Root())
	if err != nil || len(ents) != 1 || ents[0].Name != "shared" {
		t.Fatalf("B root listing %v err=%v", ents, err)
	}
	// Writes from B visible at A.
	if _, err := mB.WriteFile("/shared/reply.txt", []byte("from B")); err != nil {
		t.Fatal(err)
	}
	data, _, err = mA.ReadFile("/shared/reply.txt")
	if err != nil || string(data) != "from B" {
		t.Fatalf("A read of B write %q err=%v", data, err)
	}
}

func TestDirectoriesDistributeAcrossNodes(t *testing.T) {
	_, nodes := testCluster(t, 8, 4, Config{Replicas: -1}) // K=0: placement only
	m := nodes[0].NewMount()
	used := map[simnet.Addr]bool{}
	for i := 0; i < 24; i++ {
		user := fmt.Sprintf("user%02d", i)
		if _, err := m.WriteFile("/"+user+"/data", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		pl, _, err := nodes[0].ResolvePath("/" + user)
		if err != nil {
			t.Fatal(err)
		}
		used[pl.Node] = true
	}
	if len(used) < 4 {
		t.Fatalf("24 home dirs landed on only %d of 8 nodes", len(used))
	}
	// All files in one directory stay on the directory's node (Section 3.1).
	for i := 0; i < 10; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/user00/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	pl, _, _ := nodes[0].ResolvePath("/user00")
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			if nd.Store().NumFiles() < 11 {
				t.Fatalf("primary holds %d files, want >= 11", nd.Store().NumFiles())
			}
		}
	}
}

func TestDistributionLevelSplitsSubdirs(t *testing.T) {
	_, nodes := testCluster(t, 8, 5, Config{DistributionLevel: 2, Replicas: -1})
	m := nodes[0].NewMount()
	// Create /proj plus 16 subdirs: with L=2 they land on multiple nodes.
	if _, _, err := m.MkdirAll("/proj"); err != nil {
		t.Fatal(err)
	}
	used := map[simnet.Addr]bool{}
	for i := 0; i < 16; i++ {
		sub := fmt.Sprintf("/proj/sub%02d", i)
		if _, err := m.WriteFile(sub+"/file", []byte("s")); err != nil {
			t.Fatal(err)
		}
		pl, _, err := nodes[0].ResolvePath(sub)
		if err != nil {
			t.Fatal(err)
		}
		used[pl.Node] = true
	}
	if len(used) < 3 {
		t.Fatalf("16 subdirs landed on only %d nodes at L=2", len(used))
	}
	// Level-3 dirs stay with their level-2 parent.
	if _, err := m.WriteFile("/proj/sub00/deep/deeper/f", []byte("d")); err != nil {
		t.Fatal(err)
	}
	p2, _, _ := nodes[0].ResolvePath("/proj/sub00")
	p3, _, _ := nodes[0].ResolvePath("/proj/sub00/deep/deeper")
	if p2.Node != p3.Node {
		t.Fatalf("L+1 dir moved off its parent's node: %s vs %s", p2.Node, p3.Node)
	}
	// Parent listing shows each subdir exactly once, as a directory.
	projVH, _, _, err := m.LookupPath("/proj")
	if err != nil {
		t.Fatal(err)
	}
	ents, _, err := m.Readdir(projVH)
	if err != nil || len(ents) != 16 {
		t.Fatalf("proj listing: %d entries err=%v", len(ents), err)
	}
	for _, e := range ents {
		if e.Type != localfs.TypeDir {
			t.Fatalf("entry %q listed as %v", e.Name, e.Type)
		}
	}
}

func TestCapacityRedirection(t *testing.T) {
	// Build a cluster where every node is tiny except one big one; dirs
	// redirect off full nodes and remain transparently accessible.
	net := simnet.New(simnet.LAN100)
	state := uint64(77)
	var nodes []*Node
	for i := 0; i < 6; i++ {
		cfg := Config{Capacity: 4 << 10, Replicas: -1, RedirectAttempts: 8, UtilizationLimit: 0.5}
		if i == 5 {
			cfg.Capacity = 0 // one unlimited node
		}
		nd := NewNode(simnet.Addr(fmt.Sprintf("k%d", i)), id.Rand128(&state), net, cfg)
		var boot simnet.Addr
		if i > 0 {
			boot = nodes[0].Addr()
		}
		if _, err := nd.Join(boot); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	stabilizeAll(nodes)
	m := nodes[0].NewMount()

	// Fill the small nodes' stores beyond the limit directly.
	for i := 0; i < 5; i++ {
		// Park the filler in the hidden replica area so the virtual root
		// listing is not polluted by this out-of-band write.
		nodes[i].Store().WriteFile(RepPath("/filler"), make([]byte, 3<<10))
	}
	// New directories must redirect to the unlimited node. With a bounded
	// number of rehash attempts an insertion can legitimately fail when
	// every attempt lands on a full node (the Figure 6 failure mode), so
	// require most to succeed and every success to sit on the big node.
	created := []string{}
	for i := 0; i < 10; i++ {
		dir := fmt.Sprintf("/redir%d", i)
		if _, err := m.WriteFile(dir+"/f", []byte("redirected")); err != nil {
			if nfs.IsStatus(err, nfs.ErrNoSpc) {
				continue
			}
			t.Fatalf("create %s: %v", dir, err)
		}
		created = append(created, dir)
		pl, _, err := nodes[0].ResolvePath(dir)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Node != nodes[5].Addr() {
			t.Fatalf("%s placed on %s (util %.2f), want big node", dir, pl.Node, utilOf(nodes, pl.Node))
		}
		// Transparent read-back through a different mount.
		m2 := nodes[2].NewMount()
		data, _, err := m2.ReadFile(dir + "/f")
		if err != nil || string(data) != "redirected" {
			t.Fatalf("read of redirected dir: %q err=%v", data, err)
		}
	}
	if len(created) < 5 {
		t.Fatalf("only %d of 10 dirs created with 8 redirect attempts", len(created))
	}
	// Root listing still shows every created directory once, plain-named.
	ents, _, err := m.Readdir(m.Root())
	if err != nil || len(ents) != len(created) {
		t.Fatalf("root listing after redirects: %v err=%v", ents, err)
	}
}

// readCopy reads a node's copy of a primary-relative physical path, whether
// it holds it as primary or in the replica area.
func readCopy(nd *Node, phys string) ([]byte, error) {
	if data, err := nd.Store().ReadFile(phys); err == nil {
		return data, nil
	}
	return nd.Store().ReadFile(RepPath(phys))
}

func statCopy(nd *Node, phys string) (localfs.Attr, error) {
	if a, err := nd.Store().LookupPath(phys); err == nil {
		return a, nil
	}
	return nd.Store().LookupPath(RepPath(phys))
}

func utilOf(nodes []*Node, addr simnet.Addr) float64 {
	for _, nd := range nodes {
		if nd.Addr() == addr {
			return nd.Store().Utilization()
		}
	}
	return -1
}

func TestReplicationInvariant(t *testing.T) {
	_, nodes := testCluster(t, 6, 8, Config{Replicas: 2})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/rep/data.bin", bytes.Repeat([]byte{7}, 2048)); err != nil {
		t.Fatal(err)
	}
	// The file must exist on the primary plus 2 replicas, byte-identical.
	copies := 0
	for _, nd := range nodes {
		data, err := readCopy(nd, "/rep/data.bin")
		if err == nil {
			copies++
			if len(data) != 2048 || data[0] != 7 {
				t.Fatalf("corrupt copy on %s", nd.Addr())
			}
		}
	}
	if copies != 3 {
		t.Fatalf("found %d copies, want 3 (primary + 2 replicas)", copies)
	}
	// Writes propagate to all copies.
	fvh, _, _, err := m.LookupPath("/rep/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Write(fvh, 0, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		data, err := readCopy(nd, "/rep/data.bin")
		if err == nil && data[0] != 9 {
			t.Fatalf("replica on %s missed the write", nd.Addr())
		}
	}
	// Delete removes every instance (Section 4.2).
	dirVH, _, _, _ := m.LookupPath("/rep")
	if _, err := m.Remove(dirVH, "data.bin"); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if _, err := readCopy(nd, "/rep/data.bin"); err == nil {
			t.Fatalf("stale replica instance on %s after delete", nd.Addr())
		}
	}
}

func TestTransparentFailover(t *testing.T) {
	_, nodes := testCluster(t, 6, 13, Config{Replicas: 2})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/failme/precious.txt", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	pl, _, err := nodes[0].ResolvePath("/failme")
	if err != nil {
		t.Fatal(err)
	}
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	if primary == nodes[0] {
		// Use a mount on a different node so the client survives.
		m = nodes[(indexOf(nodes, primary)+1)%len(nodes)].NewMount()
		if _, _, err := m.ReadFile("/failme/precious.txt"); err != nil {
			t.Fatal(err)
		}
	}
	primary.Fail()

	// Access must transparently hit a replica (Section 4.4).
	data, _, err := m.ReadFile("/failme/precious.txt")
	if err != nil || string(data) != "survives" {
		t.Fatalf("failover read %q err=%v", data, err)
	}
	// Writes work against the new primary too, and keep replicating.
	if _, err := m.WriteFile("/failme/new.txt", []byte("post-failure")); err != nil {
		t.Fatalf("post-failure write: %v", err)
	}
	data, _, err = m.ReadFile("/failme/new.txt")
	if err != nil || string(data) != "post-failure" {
		t.Fatalf("post-failure read %q err=%v", data, err)
	}
}

func indexOf(nodes []*Node, target *Node) int {
	for i, nd := range nodes {
		if nd == target {
			return i
		}
	}
	return -1
}

func TestFailoverWithZeroReplicasLosesData(t *testing.T) {
	_, nodes := testCluster(t, 5, 21, Config{Replicas: -1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/gone/data", []byte("unreplicated")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/gone")
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			if nd == nodes[0] {
				m = nodes[(indexOf(nodes, nd)+1)%len(nodes)].NewMount()
			}
			nd.Fail()
		}
	}
	if _, _, err := m.ReadFile("/gone/data"); err == nil {
		t.Fatal("read of unreplicated data on dead node should fail")
	}
}

func TestMigrationOnJoin(t *testing.T) {
	net, nodes := testCluster(t, 4, 34, Config{Replicas: 1})
	m := nodes[0].NewMount()
	for i := 0; i < 8; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/mig%d/f", i), []byte("content")); err != nil {
			t.Fatal(err)
		}
	}

	// Join 4 more nodes; ownership of some keys moves to them.
	state := uint64(999)
	for i := 4; i < 8; i++ {
		nd := NewNode(simnet.Addr(fmt.Sprintf("k%d", i)), id.Rand128(&state), net, Config{Replicas: 1})
		if _, err := nd.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	stabilizeAll(nodes)
	// Let every old node push content whose ownership moved.
	for _, nd := range nodes {
		nd.SyncReplicas()
	}

	// Every directory's current primary must hold its data locally.
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/mig%d", i)
		pl, _, err := nodes[0].ResolvePath(dir)
		if err != nil {
			t.Fatalf("resolve %s: %v", dir, err)
		}
		var owner *Node
		for _, nd := range nodes {
			if nd.Addr() == pl.Node {
				owner = nd
			}
		}
		if _, err := owner.Store().ReadFile(dir + "/f"); err != nil {
			t.Fatalf("primary %s lacks %s after migration: %v", owner.Addr(), dir, err)
		}
		// And no migration flag is left behind.
		if _, err := owner.Store().LookupPath(dir + "/" + MigrationFlag); err == nil {
			t.Fatalf("migration flag left on %s", owner.Addr())
		}
		// Reads work via any mount.
		m2 := nodes[6].NewMount()
		if _, _, err := m2.ReadFile(dir + "/f"); err != nil {
			t.Fatalf("read %s via new node: %v", dir, err)
		}
	}
}

func TestMigrationFlagTriggersRepush(t *testing.T) {
	_, nodes := testCluster(t, 4, 55, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/flagged/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/flagged")
	var primary, replica *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	for _, rep := range primary.Overlay().ReplicaCandidates(1) {
		for _, nd := range nodes {
			if nd.Addr() == rep.Addr {
				replica = nd
			}
		}
	}
	if replica == nil {
		t.Fatal("no replica found")
	}
	// Corrupt the replica-area copy: simulate an interrupted migration.
	root := RepPath("/" + pl.PN())
	replica.Store().WriteFile(root+"/"+MigrationFlag, nil)
	replica.Store().RemoveAll(root + "/f")

	// Primary's next sync must detect the flag and re-push.
	primary.SyncReplicas()
	data, err := replica.Store().ReadFile(root + "/f")
	if err != nil || string(data) != "v1" {
		t.Fatalf("replica not repaired: %q err=%v", data, err)
	}
	if _, err := replica.Store().LookupPath(root + "/" + MigrationFlag); err == nil {
		t.Fatal("flag still present after repair")
	}
}

func TestRenameWithinDirectory(t *testing.T) {
	_, nodes := testCluster(t, 4, 89, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/rn/old.txt", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	dirVH, _, _, err := m.LookupPath("/rn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rename(dirVH, "old.txt", dirVH, "new.txt"); err != nil {
		t.Fatal(err)
	}
	data, _, err := m.ReadFile("/rn/new.txt")
	if err != nil || string(data) != "payload" {
		t.Fatalf("renamed read %q err=%v", data, err)
	}
	if _, _, err := m.ReadFile("/rn/old.txt"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("old name err = %v", err)
	}
	// Replicas renamed too.
	pl, _, _ := nodes[0].ResolvePath("/rn")
	phys := "/" + pl.PN()
	for _, nd := range nodes {
		if _, err := statCopy(nd, phys+"/old.txt"); err == nil {
			t.Fatalf("replica on %s still has old name", nd.Addr())
		}
	}
}

func TestRenameDistributedDirectoryCopyDelete(t *testing.T) {
	_, nodes := testCluster(t, 4, 144, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/olddir/a/b.txt", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rename(m.Root(), "olddir", m.Root(), "newdir"); err != nil {
		t.Fatal(err)
	}
	data, _, err := m.ReadFile("/newdir/a/b.txt")
	if err != nil || string(data) != "deep" {
		t.Fatalf("post-rename read %q err=%v", data, err)
	}
	if _, _, _, err := m.LookupPath("/olddir"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("old dir err = %v", err)
	}
	ents, _, _ := m.Readdir(m.Root())
	if len(ents) != 1 || ents[0].Name != "newdir" {
		t.Fatalf("root listing after rename: %v", ents)
	}
}

func TestRmdirDistributedCleansLinksAndScaffolding(t *testing.T) {
	_, nodes := testCluster(t, 6, 233, Config{DistributionLevel: 2, Replicas: 1})
	m := nodes[0].NewMount()
	if _, _, err := m.MkdirAll("/top/sub"); err != nil {
		t.Fatal(err)
	}
	topVH, _, _, err := m.LookupPath("/top")
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty: rmdir refused.
	if _, err := m.WriteFile("/top/sub/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rmdir(topVH, "sub"); !nfs.IsStatus(err, nfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	subVH, _, _, _ := m.LookupPath("/top/sub")
	if _, err := m.Remove(subVH, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rmdir(topVH, "sub"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
	// Gone from listings, resolution, and all stores.
	ents, _, _ := m.Readdir(topVH)
	if len(ents) != 0 {
		t.Fatalf("top still lists %v", ents)
	}
	if _, _, _, err := m.LookupPath("/top/sub"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("lookup removed dir err = %v", err)
	}
	for _, nd := range nodes {
		found := false
		nd.Store().Walk("/", func(p string, a localfs.Attr, _ string) error {
			if BaseName(pathBase(p)) == "sub" {
				found = true
			}
			return nil
		})
		if found {
			t.Fatalf("node %s still stores traces of removed dir", nd.Addr())
		}
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func TestReviveRejoinsEmpty(t *testing.T) {
	_, nodes := testCluster(t, 5, 377, Config{Replicas: 2})
	m := nodes[1].NewMount()
	if _, err := m.WriteFile("/perm/f", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[1].ResolvePath("/perm")
	var victim *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			victim = nd
		}
	}
	if victim == nodes[1] {
		m = nodes[0].NewMount()
	}
	victim.Fail()
	stabilizeAll(remove(nodes, victim))

	// Data survives via replicas.
	if _, _, err := m.ReadFile("/perm/f"); err != nil {
		t.Fatalf("read during failure: %v", err)
	}

	// Revive with a fresh id: store purged (Section 4.3.2).
	state := uint64(424242)
	if _, err := victim.Revive(id.Rand128(&state), nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	if victim.Store().NumFiles() != 0 {
		t.Fatalf("revived node still holds %d files", victim.Store().NumFiles())
	}
	stabilizeAll(nodes)
	// The file is still reachable and consistent.
	data, _, err := m.ReadFile("/perm/f")
	if err != nil || string(data) != "durable" {
		t.Fatalf("read after revive %q err=%v", data, err)
	}
}

func remove(nodes []*Node, dead *Node) []*Node {
	out := make([]*Node, 0, len(nodes))
	for _, nd := range nodes {
		if nd != dead {
			out = append(out, nd)
		}
	}
	return out
}

func TestUserSymlinksPreserved(t *testing.T) {
	_, nodes := testCluster(t, 3, 610, Config{})
	m := nodes[0].NewMount()
	dirVH, _, err := m.MkdirAll("/links")
	if err != nil {
		t.Fatal(err)
	}
	lvh, _, err := m.Symlink(dirVH, "mylink", "../somewhere/else")
	if err != nil {
		t.Fatal(err)
	}
	target, _, err := m.Readlink(lvh)
	if err != nil || target != "../somewhere/else" {
		t.Fatalf("readlink %q err=%v", target, err)
	}
	// Listed as a symlink, not a directory.
	ents, _, err := m.Readdir(dirVH)
	if err != nil || len(ents) != 1 || ents[0].Type != localfs.TypeSymlink {
		t.Fatalf("listing %v err=%v", ents, err)
	}
	// Removable as a file.
	if _, err := m.Remove(dirVH, "mylink"); err != nil {
		t.Fatal(err)
	}
}

func TestSetattrPropagatesToReplicas(t *testing.T) {
	_, nodes := testCluster(t, 4, 987, Config{Replicas: 2})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/sa/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/sa/f")
	if err != nil {
		t.Fatal(err)
	}
	sz := int64(4)
	attr, _, err := m.Setattr(fvh, localfs.SetAttr{Size: &sz})
	if err != nil || attr.Size != 4 {
		t.Fatalf("setattr %+v err=%v", attr, err)
	}
	pl, _, _ := nodes[0].ResolvePath("/sa")
	phys := "/" + pl.PN() + "/f"
	count := 0
	for _, nd := range nodes {
		if a, err := statCopy(nd, phys); err == nil {
			count++
			if a.Size != 4 {
				t.Fatalf("copy on %s has size %d", nd.Addr(), a.Size)
			}
		}
	}
	if count != 3 {
		t.Fatalf("%d copies after setattr, want 3", count)
	}
}

func TestInterposeCostCharged(t *testing.T) {
	_, nodes := testCluster(t, 1, 31, Config{})
	m := nodes[0].NewMount()
	_, _, err := m.MkdirAll("/c")
	if err != nil {
		t.Fatal(err)
	}
	attr, cost, err := m.Getattr(RootVH)
	if err != nil || attr.Type != localfs.TypeDir {
		t.Fatal(err)
	}
	if cost != nodes[0].Config().InterposeCost {
		t.Fatalf("root getattr cost %v, want exactly I", cost)
	}
	_, _, cost, err = m.LookupPath("/c")
	if err != nil {
		t.Fatal(err)
	}
	if cost < nodes[0].Config().InterposeCost {
		t.Fatalf("op cost %v below I", cost)
	}
}

func TestNotPrimaryRejected(t *testing.T) {
	_, nodes := testCluster(t, 6, 47, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/np/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/np")
	// Find a node that is NOT the primary and send it an Apply directly.
	var wrong *Node
	for _, nd := range nodes {
		if nd.Addr() != pl.Node {
			wrong = nd
			break
		}
	}
	_, _, _, err := nodes[0].apply(nil, wrong.Addr(), Key(pl.PN()), Track{},
		FSOp{Kind: FSWriteFile, Path: "/" + pl.PN() + "/evil", Data: []byte("no")})
	if err != ErrNotPrimary {
		t.Fatalf("apply at wrong node err = %v", err)
	}
}

func TestRenameDistributedSubdirViaLink(t *testing.T) {
	// At L=2, a second-level directory renames by moving only its special
	// link (Section 4.1.4) — the stored hierarchy must not move.
	_, nodes := testCluster(t, 6, 611, Config{DistributionLevel: 2, Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/proj/old/deep/file.txt", []byte("stay put")); err != nil {
		t.Fatal(err)
	}
	before, _, err := nodes[0].ResolvePath("/proj/old")
	if err != nil {
		t.Fatal(err)
	}
	projVH, _, _, err := m.LookupPath("/proj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rename(projVH, "old", projVH, "new"); err != nil {
		t.Fatal(err)
	}
	after, _, err := nodes[0].ResolvePath("/proj/new")
	if err != nil {
		t.Fatal(err)
	}
	// Same node, same placement name: nothing moved.
	if after.Node != before.Node || after.PN() != before.PN() {
		t.Fatalf("hierarchy moved: %s/%s -> %s/%s", before.Node, before.PN(), after.Node, after.PN())
	}
	data, _, err := m.ReadFile("/proj/new/deep/file.txt")
	if err != nil || string(data) != "stay put" {
		t.Fatalf("read after link rename: %q err=%v", data, err)
	}
	if _, _, _, err := m.LookupPath("/proj/old"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("old name still resolves: %v", err)
	}
	// Rename onto an existing sibling is refused.
	if _, err := m.WriteFile("/proj/other/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rename(projVH, "new", projVH, "other"); !nfs.IsStatus(err, nfs.ErrExist) {
		t.Fatalf("rename onto existing err = %v", err)
	}
}

func TestRenameRedirectedLevel1ViaLinkMove(t *testing.T) {
	// A redirected level-1 home renames by moving its link between probe
	// nodes; the salted hierarchy stays on its node.
	net := simnet.New(simnet.LAN100)
	state := uint64(612)
	var nodes []*Node
	for i := 0; i < 6; i++ {
		cfg := Config{Capacity: 4 << 10, Replicas: -1, RedirectAttempts: 16, UtilizationLimit: 0.5}
		if i == 5 {
			cfg.Capacity = 0
		}
		nd := NewNode(simnet.Addr(fmt.Sprintf("k%d", i)), id.Rand128(&state), net, cfg)
		var boot simnet.Addr
		if i > 0 {
			boot = nodes[0].Addr()
		}
		if _, err := nd.Join(boot); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	stabilizeAll(nodes)
	for i := 0; i < 5; i++ {
		nodes[i].Store().WriteFile(RepPath("/filler"), make([]byte, 3<<10))
	}
	m := nodes[0].NewMount()
	// Find a name that redirects.
	var dir string
	for i := 0; ; i++ {
		dir = fmt.Sprintf("/redir%d", i)
		if _, err := m.WriteFile(dir+"/f", []byte("moved by name only")); err != nil {
			continue
		}
		pl, _, err := nodes[0].ResolvePath(dir)
		if err != nil {
			t.Fatal(err)
		}
		if IsSalted(pl.PN()) {
			break
		}
		if i > 20 {
			t.Skip("no redirected placement with this seed")
		}
	}
	before, _, _ := nodes[0].ResolvePath(dir)
	if _, err := m.Rename(m.Root(), dir[1:], m.Root(), "renamed"); err != nil {
		t.Fatal(err)
	}
	after, _, err := nodes[0].ResolvePath("/renamed")
	if err != nil {
		t.Fatal(err)
	}
	if after.Node != before.Node || after.PN() != before.PN() {
		t.Fatalf("salted hierarchy moved: %s/%s -> %s/%s", before.Node, before.PN(), after.Node, after.PN())
	}
	data, _, err := m.ReadFile("/renamed/f")
	if err != nil || string(data) != "moved by name only" {
		t.Fatalf("read after rename: %q err=%v", data, err)
	}
	if _, _, _, err := m.LookupPath(dir); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("old name still resolves: %v", err)
	}
	// Root listing shows only the new name.
	ents, _, _ := m.Readdir(m.Root())
	for _, e := range ents {
		if e.Name == dir[1:] {
			t.Fatalf("old name in root listing: %v", ents)
		}
	}
}

func TestMountStatfsAggregates(t *testing.T) {
	net := simnet.New(simnet.LAN100)
	state := uint64(712)
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nd := NewNode(simnet.Addr(fmt.Sprintf("k%d", i)), id.Rand128(&state), net,
			Config{Capacity: int64(i+1) << 20, Replicas: 1})
		var boot simnet.Addr
		if i > 0 {
			boot = nodes[0].Addr()
		}
		if _, err := nd.Join(boot); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	stabilizeAll(nodes)
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/agg/f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	st, _, err := m.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 4 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	// 1+2+3+4 MiB of contributed capacity.
	if st.TotalBytes != 10<<20 {
		t.Fatalf("total = %d", st.TotalBytes)
	}
	// One file + one replica.
	if st.Files != 2 || st.UsedBytes != 2000 {
		t.Fatalf("files=%d used=%d", st.Files, st.UsedBytes)
	}
}

func TestRenameInvalidatesStaleRemoteCaches(t *testing.T) {
	// A mount on another node resolves a directory, then the directory is
	// renamed through a different mount. The stale resolver cache must not
	// alias the renamed hierarchy: the old name disappears, the new name
	// serves the data, and new content under the recreated old name stays
	// separate.
	_, nodes := testCluster(t, 5, 811, Config{DistributionLevel: 2, Replicas: 1})
	mA := nodes[0].NewMount()
	mB := nodes[1].NewMount()

	if _, err := mA.WriteFile("/p/old/data.txt", []byte("original")); err != nil {
		t.Fatal(err)
	}
	// mB caches the resolution of /p/old.
	if _, _, err := mB.ReadFile("/p/old/data.txt"); err != nil {
		t.Fatal(err)
	}
	// mA renames old -> fresh (cheap link rename with storage relocation).
	pVH, _, _, err := mA.LookupPath("/p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mA.Rename(pVH, "old", pVH, "fresh"); err != nil {
		t.Fatal(err)
	}
	// mB's stale cache must yield NOENT for the old name...
	if _, _, err := mB.ReadFile("/p/old/data.txt"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("stale-cache read of old name: %v", err)
	}
	// ...and the new name must serve the data.
	data, _, err := mB.ReadFile("/p/fresh/data.txt")
	if err != nil || string(data) != "original" {
		t.Fatalf("read via new name: %q err=%v", data, err)
	}
	// Recreating the old name yields a separate, empty directory.
	if _, err := mA.WriteFile("/p/old/new.txt", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	vh, _, _, err := mB.LookupPath("/p/old")
	if err != nil {
		t.Fatal(err)
	}
	ents, _, err := mB.Readdir(vh)
	if err != nil || len(ents) != 1 || ents[0].Name != "new.txt" {
		t.Fatalf("recreated dir listing: %v err=%v", ents, err)
	}
	// The renamed directory is untouched by the recreation.
	data, _, err = mB.ReadFile("/p/fresh/data.txt")
	if err != nil || string(data) != "original" {
		t.Fatalf("renamed dir after recreation: %q err=%v", data, err)
	}
}
