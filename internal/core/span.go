package core

import (
	"encoding/binary"
	"sort"

	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/repl"
	"repro/internal/simnet"
)

// Overlay-health gauge names published by ProbeHealth. They live here (not
// obs) because only core can compute them; the exposition layer and tests
// reference the constants instead of retyping strings.
const (
	GaugeLeafSize     = "overlay.leafset.size"
	GaugeLeafIdeal    = "overlay.leafset.ideal"
	GaugeTableEntries = "overlay.table.entries"
	GaugeTableRows    = "overlay.table.rows"
	GaugeReplicaLag   = "overlay.replica.lag"
)

// addrHash folds a transport address into a 64-bit value (FNV-1a) used to
// perturb the per-node trace-ID seed: nodes sharing one Config.Seed must
// still draw disjoint ID streams or cross-node trace reassembly would
// collide.
func addrHash(a simnet.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return h
}

// nodeSink plugs the node's tracer into a context-propagating transport.
// The transport drives it around every exchange that arrives with a valid
// trace context: NextSpanID before the handler runs (so nested RPCs issued
// by the handler parent under the server span), RecordServerSpan after.
type nodeSink struct{ n *Node }

func (s nodeSink) NextSpanID() uint64 { return s.n.tracer.NextSpanID() }

func (s nodeSink) RecordServerSpan(ctx obs.TraceContext, span uint64, service string, from simnet.Addr, req []byte, cost simnet.Cost, err error) {
	rec := obs.SpanRecord{
		Hi:     ctx.Hi,
		Lo:     ctx.Lo,
		Parent: ctx.Span,
		Span:   span,
		Name:   spanName(service, req),
		From:   string(from),
		Node:   string(s.n.addr),
		DurNS:  int64(cost),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.n.tracer.RecordSpan(rec)
}

// koshaProcNames names replication-service procedures for span labels.
var koshaProcNames = map[uint32]string{
	kApply:      "apply",
	kMirror:     "mirror",
	kStatTree:   "stat-tree",
	kUntrack:    "untrack",
	kPromote:    "promote",
	kReplicas:   "replicas",
	kTreeDigest: "tree-digest",
	kDirDigests: "dir-digests",
}

// ctlProcNames names administrative-service procedures for span labels.
var ctlProcNames = map[uint32]string{
	ctlRead:      "read",
	ctlWrite:     "write",
	ctlList:      "list",
	ctlMkdirAll:  "mkdir-all",
	ctlRemoveAll: "remove-all",
	ctlStat:      "stat",
	ctlStatfs:    "statfs",
	ctlPeers:     "peers",
	ctlStats:     "stats",
	ctlTrace:     "trace",
	ctlTraceFrag: "trace-frag",
	ctlSamples:   "samples",
	ctlSlow:      "slow",
}

// spanName labels a server span "service.proc" by decoding the leading
// big-endian procedure number every node service puts first on the wire.
func spanName(service string, req []byte) string {
	if len(req) < 4 {
		return service
	}
	proc := binary.BigEndian.Uint32(req[:4])
	switch service {
	case nfs.Service:
		return "nfs." + nfs.Proc(proc).String()
	case KoshaService:
		if s, ok := koshaProcNames[proc]; ok {
			return "kosha." + s
		}
	case pastry.Service:
		return "pastry." + pastry.ProcName(proc)
	case CtlService:
		if s, ok := ctlProcNames[proc]; ok {
			return "koshactl." + s
		}
	}
	return service + ".?"
}

// nfsT returns the node's NFS client stamped with tr's trace context: the
// returned value client propagates the context on every call so the remote
// server records a child span. A nil trace yields the plain client.
func (n *Node) nfsT(tr *obs.Trace) nfs.Client {
	if tr == nil {
		return n.nfsc
	}
	return n.nfsc.WithCtx(tr.Ctx())
}

// nfsCtx is nfsT for call sites that hold a raw context (the repl engine's
// Peer callbacks) rather than a trace.
func (n *Node) nfsCtx(tc obs.TraceContext) nfs.Client {
	return n.nfsc.WithCtx(tc)
}

// callKosha issues one kosha-service RPC through the retrier, carrying tc
// across the wire when it is valid so the server's handler work appears as
// a span in the originating trace.
func (n *Node) callKosha(tc obs.TraceContext, to simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	return n.rpc.CallCtx(tc, n.addr, to, KoshaService, req)
}

// ProbeHealth refreshes the overlay-health gauges from live overlay and
// replication state: leaf-set occupancy against the configured ideal,
// routing-table fill, and the count of (root, replica) pairs whose replica
// copy digest-lags the primary. It issues digest RPCs to current replica
// candidates, so call it at a low rate (koshad's prober) or on demand.
func (n *Node) ProbeHealth() {
	size, ideal := n.overlay.LeafStats()
	n.reg.Gauge(GaugeLeafSize).Set(int64(size))
	n.reg.Gauge(GaugeLeafIdeal).Set(int64(ideal))
	entries, rows := n.overlay.TableStats()
	n.reg.Gauge(GaugeTableEntries).Set(int64(entries))
	n.reg.Gauge(GaugeTableRows).Set(int64(rows))

	roots := make([]string, 0, 8)
	for root := range n.rep.TrackedRoots() {
		if n.rep.IsDead(root) {
			continue
		}
		if local := n.rep.DigestLocal(root); local.Exists {
			roots = append(roots, root)
		}
	}
	sort.Strings(roots)
	reps := n.overlay.ReplicaCandidates(n.cfg.Replicas)
	lag := 0
	for _, root := range roots {
		local := n.rep.DigestLocal(root)
		for _, rep := range reps {
			remote, _, err := n.remoteDigestTree(obs.TraceContext{}, rep.Addr, repl.RepPath(root))
			if err != nil || !remote.Exists || remote.Flag || remote.Root != local.Root {
				lag++
			}
		}
	}
	n.reg.Gauge(GaugeReplicaLag).Set(int64(lag))
}
