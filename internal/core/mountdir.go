package core

import (
	"path"
	"sort"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Directory namespace operations: create, list, remove, and rename. These
// are the operations that interact with placement — distributed levels hash
// each directory to its own node (Sections 3.2-3.3) while deeper levels stay
// on the parent's node — so their bodies branch on distributedAt.

// Mkdir creates a directory. Directories within the distribution level are
// hashed to their own node, with capacity redirection (Sections 3.2-3.3);
// deeper directories stay on the parent's node.
func (m *Mount) Mkdir(dir VH, name string, mode uint32) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.beginAt(obs.OpcMkdir, dir, name)
	vh, attr, cost, err := m.mkdir(o.tr, dir, name, mode)
	o.done(cost, err)
	return vh, attr, cost, err
}

func (m *Mount) mkdir(tr *obs.Trace, dir VH, name string, mode uint32) (VH, localfs.Attr, simnet.Cost, error) {
	if err := ValidName(name); err != nil {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, err
	}
	var out VH
	var attr localfs.Attr
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.kind != localfs.TypeDir {
			return 0, &nfs.Error{Proc: nfs.ProcMkdir, Status: nfs.ErrNotDir}
		}
		if m.distributedAt(de) {
			vh, a, c, err := m.mkdirDistributed(tr, de, name, mode)
			if err != nil {
				return c, err
			}
			out, attr = vh, a
			return c, nil
		}
		phys := path.Join(de.physPath, name)
		a, fh, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSMkdir, Path: phys, Mode: mode})
		if err != nil {
			return c, err
		}
		attr = a
		m.dropMetaUnder(path.Join(de.vpath, name))
		m.invalAttr(de.vpath)
		childPlace := de.place
		childPlace.Rest = append(append([]string(nil), de.place.Rest...), name)
		out = m.insert(&ventry{
			vpath:    path.Join(de.vpath, name),
			kind:     localfs.TypeDir,
			node:     de.node,
			fh:       fh,
			physPath: phys,
			pn:       de.pn,
			root:     de.root,
			place:    childPlace,
		})
		return c, nil
	})
	return out, attr, cost, err
}

// mkdirDistributed creates a directory at a distributed level: hash the
// name, route, redirect with salts while the target is above the
// utilization limit, create the hierarchy on the chosen node, and place a
// special link in the parent when needed (Section 3.3).
func (m *Mount) mkdirDistributed(tr *obs.Trace, parent *ventry, name string, mode uint32) (VH, localfs.Attr, simnet.Cost, error) {
	n := m.n
	var total simnet.Cost

	// Where resolution will probe for this name (and where a special link
	// would live): the original hash target for level-1 directories, the
	// parent's node otherwise.
	var linkNode simnet.Addr
	var linkDir string
	var linkKey = Key(name)
	var linkTrack Track
	if parent.place.VRoot {
		res, c, err := n.route(tr, Key(name))
		total = simnet.Seq(total, c)
		if err != nil {
			return 0, localfs.Attr{}, total, err
		}
		linkNode, linkDir = res.Node.Addr, "/"
		linkTrack = Track{PN: name, Link: path.Join("/", name)}
	} else {
		linkNode, linkDir = parent.node, parent.physPath
		linkKey = Key(parent.pn)
		linkTrack = Track{PN: parent.pn, Root: parent.root}
	}

	// Existence check at the probe location.
	if _, _, c, err := n.remoteLookupPath(tr.Ctx(), linkNode, path.Join(linkDir, name)); err == nil {
		return 0, localfs.Attr{}, simnet.Seq(total, c), &nfs.Error{Proc: nfs.ProcMkdir, Status: nfs.ErrExist}
	} else {
		total = simnet.Seq(total, c)
		if !nfs.IsStatus(err, nfs.ErrNoEnt) {
			return 0, localfs.Attr{}, total, err
		}
	}

	// Choose the placement name and node, redirecting on full targets:
	// "the redirection process repeats till a node with enough disk space
	// is found, or a pre-specified number of retries is exhausted".
	var pn string
	var target simnet.Addr
	chosen := false
	for attempt := 0; attempt <= n.cfg.RedirectAttempts; attempt++ {
		pn = Salted(name, attempt)
		res, c, err := n.route(tr, Key(pn))
		total = simnet.Seq(total, c)
		if err != nil {
			return 0, localfs.Attr{}, total, err
		}
		target = res.Node.Addr
		st, c, err := n.remoteFSStat(target)
		total = simnet.Seq(total, c)
		if err != nil {
			continue
		}
		if st.TotalBytes == 0 || float64(st.UsedBytes)/float64(st.TotalBytes) < n.cfg.UtilizationLimit {
			chosen = true
			break
		}
	}
	if !chosen {
		return 0, localfs.Attr{}, total, &nfs.Error{Proc: nfs.ProcMkdir, Status: nfs.ErrNoSpc}
	}

	// An unsalted level-1 home sits at its own hash target under its plain
	// name and needs no link; every other distributed directory gets a
	// fresh, unique storage root behind a special link, so a later rename
	// or re-creation can never alias its storage (see MakeLinkTarget).
	needLink := !(parent.place.VRoot && pn == name)
	var subRoot string
	if needLink {
		subRoot = n.newStoreRoot(pn)
	} else {
		subRoot = "/" + pn
	}

	// Create the subtree root on the chosen node.
	attr, fh, c, err := n.apply(tr, target, Key(pn), Track{PN: pn, Root: subRoot},
		FSOp{Kind: FSMkdirAll, Path: subRoot, Mode: mode})
	total = simnet.Seq(total, c)
	if err != nil {
		return 0, localfs.Attr{}, total, err
	}

	if needLink {
		_, _, c, err := n.apply(tr, linkNode, linkKey, linkTrack,
			FSOp{Kind: FSSymlink, Path: path.Join(linkDir, name), Target: MakeLinkTarget(pn, subRoot)})
		total = simnet.Seq(total, c)
		if err != nil {
			return 0, localfs.Attr{}, total, err
		}
	}

	place := Place{Node: target, Name: pn, Store: subRoot}
	vpath := path.Join(parent.vpath, name)
	n.cachePut(vpath, place)
	vh := m.insert(&ventry{
		vpath:    vpath,
		kind:     localfs.TypeDir,
		node:     target,
		fh:       fh,
		physPath: subRoot,
		pn:       pn,
		root:     subRoot,
		place:    place,
	})
	return vh, attr, total, nil
}

// Readdir lists a virtual directory: physical entries minus Kosha-internal
// names, with special links reported as the directories they stand for
// (Section 3.3: the link's name "helps Kosha list the directory contents of
// the parent directory"). One READDIRPLUS reply carries every entry's
// handle, attributes, and symlink target, so classifying special links
// needs no per-entry READLINK, and below the distribution level the reply
// pre-warms the name and attribute caches: a following stat-all-entries
// sweep issues no RPCs at all (the N+1 round trips collapse into 1).
func (m *Mount) Readdir(dir VH) ([]DirEntry, simnet.Cost, error) {
	o := m.begin(obs.OpcReaddir, m.vpathOf(dir))
	ents, cost, err := m.readdir(o.tr, dir)
	o.done(cost, err)
	return ents, cost, err
}

func (m *Mount) readdir(tr *obs.Trace, dir VH) ([]DirEntry, simnet.Cost, error) {
	de, err := m.entry(dir)
	if err != nil {
		return nil, m.n.cfg.InterposeCost, err
	}
	if de.place.VRoot {
		return m.readdirRoot(tr)
	}
	var out []DirEntry
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		ents, c, err := m.n.nfsT(tr).ReaddirPlusAll(de.node, de.fh, 256)
		if err != nil {
			return c, err
		}
		// Children of a sub-distribution-level directory live on the
		// parent's node and their handles came back in the reply, so each
		// is a complete lookup result worth caching. Distributed levels
		// resolve through the overlay instead and are left alone.
		prewarm := !m.distributedAt(de)
		out = out[:0]
		for _, e := range ents {
			if Hidden(e.Name) {
				continue
			}
			if e.Type == localfs.TypeSymlink {
				if _, _, ok := ParseLinkTarget(e.SymTarget); ok {
					// Special placement link: a directory on another node.
					out = append(out, DirEntry{Name: e.Name, Type: localfs.TypeDir})
					continue
				}
			}
			out = append(out, DirEntry{Name: e.Name, Type: e.Type})
			if prewarm {
				childPlace := de.place
				childPlace.Rest = append(append([]string(nil), de.place.Rest...), e.Name)
				m.dnlcPut(ventry{
					vpath:    path.Join(de.vpath, e.Name),
					kind:     e.Type,
					node:     de.node,
					fh:       e.FH,
					physPath: path.Join(de.physPath, e.Name),
					pn:       de.pn,
					root:     de.root,
					place:    childPlace,
				}, e.Attr)
			}
		}
		return c, nil
	})
	return out, cost, err
}

// readdirRoot lists the virtual root: "the /kosha/$USER directory actually
// corresponds to the union of the /kosha_store/$USER directories on all
// nodes" (Section 3) — the root listing is the union of store roots.
func (m *Mount) readdirRoot(tr *obs.Trace) ([]DirEntry, simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	seen := make(map[string]localfs.FileType)
	// The union must cover *every* live node, not just the ones this node's
	// routing state happens to name: at large N, Known() is O(log N) of the
	// membership and the union would silently drop top-level directories
	// hosted on strangers. A clockwise ring walk enumerates the live
	// membership at one leaf-set RPC per l/2 positions; Known() is folded in
	// as a free extra so a mid-churn walk cut short by a stale leaf entry
	// still sees this node's own horizon.
	nodes, c := m.ringWalk()
	total = simnet.Seq(total, c)
	for _, addr := range nodes {
		var ents []nfs.DirEntry
		ok := false
		for attempt := 0; attempt < 2; attempt++ {
			rootH, c, err := m.n.rootHandle(addr)
			total = simnet.Seq(total, c)
			if err != nil {
				break
			}
			ents, c, err = m.n.nfsT(tr).ReaddirAll(addr, rootH, 256)
			total = simnet.Seq(total, c)
			if err != nil {
				// A cached handle for a node that crashed and rejoined is
				// stale; drop it and retry once so the revived node's store
				// still contributes to the union.
				if nfs.IsStatus(err, nfs.ErrStale) && attempt == 0 {
					m.n.dropRootHandle(addr)
					continue
				}
				break
			}
			ok = true
			break
		}
		if !ok {
			continue
		}
		for _, e := range ents {
			if Hidden(e.Name) {
				continue
			}
			if _, dup := seen[e.Name]; dup {
				continue
			}
			// Root entries are directories (real or via special link).
			seen[e.Name] = localfs.TypeDir
		}
	}
	// The union is advisory: a node that fell out of a key's replica set
	// can still hold a stale copy of a deleted directory, so each name is
	// validated against authoritative resolution before it is listed.
	out := make([]DirEntry, 0, len(seen))
	for name, typ := range seen {
		if _, _, c, err := m.materialize(tr, "/"+name); err != nil {
			total = simnet.Seq(total, c)
			continue
		} else {
			total = simnet.Seq(total, c)
		}
		out = append(out, DirEntry{Name: name, Type: typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, total, nil
}

// ringWalk returns the live node list the root listing unions over,
// memoized per mount. A fresh walk enumerates the ring clockwise and folds
// in Known(); the result is cached for Config.RingCacheTTL and reused for
// free (no RPCs, no cost) as long as the node's ring epoch is unchanged —
// any membership event bumps the epoch and forces a re-walk. Callers must
// not mutate the returned slice.
func (m *Mount) ringWalk() ([]simnet.Addr, simnet.Cost) {
	ttl := m.n.cfg.RingCacheTTL
	epoch := m.n.ringEpoch.Load()
	if ttl > 0 {
		m.ringMu.Lock()
		if m.ringNodes != nil && m.ringEpoch == epoch && m.now().Sub(m.ringAt) < ttl {
			nodes := m.ringNodes
			m.ringMu.Unlock()
			return nodes, 0
		}
		m.ringMu.Unlock()
	}
	nodes := []simnet.Addr{m.n.addr}
	dup := map[simnet.Addr]bool{m.n.addr: true}
	ring, c := m.n.overlay.EnumerateRing()
	for _, p := range ring {
		if !dup[p.Addr] {
			dup[p.Addr] = true
			nodes = append(nodes, p.Addr)
		}
	}
	for _, p := range m.n.overlay.Known() {
		if !dup[p.Addr] {
			dup[p.Addr] = true
			nodes = append(nodes, p.Addr)
		}
	}
	if ttl > 0 {
		m.ringMu.Lock()
		m.ringNodes = nodes
		m.ringEpoch = epoch
		m.ringAt = m.now()
		m.ringMu.Unlock()
	}
	return nodes, c
}

// Remove unlinks a file or user symlink (Section 4.1.5): the RPC is
// forwarded to the primary, which removes all replica instances.
func (m *Mount) Remove(dir VH, name string) (simnet.Cost, error) {
	o := m.beginAt(obs.OpcRemove, dir, name)
	cost, err := m.remove(o.tr, dir, name)
	o.done(cost, err)
	return cost, err
}

func (m *Mount) remove(tr *obs.Trace, dir VH, name string) (simnet.Cost, error) {
	return m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.place.VRoot {
			return 0, &nfs.Error{Proc: nfs.ProcRemove, Status: nfs.ErrIsDir}
		}
		phys := path.Join(de.physPath, name)
		_, attr, c, err := m.n.remoteLookupPath(tr.Ctx(), de.node, phys)
		if err != nil {
			return c, err
		}
		if attr.Type == localfs.TypeDir {
			return c, &nfs.Error{Proc: nfs.ProcRemove, Status: nfs.ErrIsDir}
		}
		if attr.Type == localfs.TypeSymlink {
			target, c2, err := m.n.readLink(tr.Ctx(), de.node, phys)
			c = simnet.Seq(c, c2)
			if err == nil {
				if _, _, ok := ParseLinkTarget(target); ok {
					return c, &nfs.Error{Proc: nfs.ProcRemove, Status: nfs.ErrIsDir}
				}
			}
		}
		_, _, c2, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSRemove, Path: phys})
		if err == nil {
			m.dropMetaUnder(path.Join(de.vpath, name))
			m.invalAttr(de.vpath)
		}
		return simnet.Seq(c, c2), err
	})
}

// Rmdir removes an empty directory, pruning scaffolding and special links
// for distributed directories (Section 4.1.5).
func (m *Mount) Rmdir(dir VH, name string) (simnet.Cost, error) {
	o := m.beginAt(obs.OpcRmdir, dir, name)
	cost, err := m.rmdir(o.tr, dir, name)
	o.done(cost, err)
	return cost, err
}

func (m *Mount) rmdir(tr *obs.Trace, dir VH, name string) (simnet.Cost, error) {
	return m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if m.distributedAt(de) {
			return m.rmdirDistributed(tr, de, name)
		}
		phys := path.Join(de.physPath, name)
		_, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSRmdir, Path: phys})
		if err == nil {
			m.dropMetaUnder(path.Join(de.vpath, name))
			m.invalAttr(de.vpath)
		}
		return c, err
	})
}

func (m *Mount) rmdirDistributed(tr *obs.Trace, parent *ventry, name string) (simnet.Cost, error) {
	n := m.n
	var total simnet.Cost
	vpath := path.Join(parent.vpath, name)

	// Locate the child and verify virtual emptiness.
	child, _, c, err := m.materialize(tr, vpath)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	if child.kind != localfs.TypeDir {
		return total, &nfs.Error{Proc: nfs.ProcRmdir, Status: nfs.ErrNotDir}
	}
	ents, c, err := n.nfsc.ReaddirAll(child.node, child.fh, 256)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	for _, e := range ents {
		if !Hidden(e.Name) {
			return total, &nfs.Error{Proc: nfs.ProcRmdir, Status: nfs.ErrNotEmpty}
		}
	}

	// Remove the hierarchy on its node (and replicas), pruning empty
	// scaffolding above it.
	_, _, c, err = n.apply(tr, child.node, Key(child.pn), Track{PN: child.pn, Root: child.root},
		FSOp{Kind: FSRemoveAll, Path: child.root, Prune: true})
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}

	// Remove the special link from the parent, if one exists.
	var linkNode simnet.Addr
	var linkDir string
	linkKey := Key(name)
	var linkTrack Track
	if parent.place.VRoot {
		res, c, rerr := n.route(tr, Key(name))
		total = simnet.Seq(total, c)
		if rerr != nil {
			return total, rerr
		}
		linkNode, linkDir = res.Node.Addr, "/"
		linkTrack = Track{PN: name, Link: path.Join("/", name)}
	} else {
		linkNode, linkDir = parent.node, parent.physPath
		linkKey = Key(parent.pn)
		linkTrack = Track{PN: parent.pn, Root: parent.root}
	}
	if !(parent.place.VRoot && child.root == "/"+name) {
		linkPath := path.Join(linkDir, name)
		if _, attr, c, lerr := n.remoteLookupPath(tr.Ctx(), linkNode, linkPath); lerr == nil && attr.Type == localfs.TypeSymlink {
			total = simnet.Seq(total, c)
			_, _, c2, derr := n.apply(tr, linkNode, linkKey, linkTrack, FSOp{Kind: FSRemove, Path: linkPath})
			total = simnet.Seq(total, c2)
			if derr != nil {
				return total, derr
			}
		} else {
			total = simnet.Seq(total, c)
		}
	}
	n.cacheDrop(vpath)
	m.dropMetaUnder(vpath)
	m.invalAttr(parent.vpath)
	return total, nil
}

// Rename renames an entry (Section 4.1.4). Renames within one stored
// hierarchy are a single forwarded NFS rename (mirrored to replicas).
// Renaming a distributed directory, or across hierarchies, is "equivalent
// to a copy to a new location followed by a delete of the old location".
func (m *Mount) Rename(srcDir VH, srcName string, dstDir VH, dstName string) (simnet.Cost, error) {
	o := m.beginAt(obs.OpcRename, srcDir, srcName)
	cost, err := m.rename(o.tr, srcDir, srcName, dstDir, dstName)
	o.done(cost, err)
	return cost, err
}

func (m *Mount) rename(tr *obs.Trace, srcDir VH, srcName string, dstDir VH, dstName string) (simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	if err := ValidName(dstName); err != nil {
		return total, err
	}
	sde, err := m.entry(srcDir)
	if err != nil {
		return total, err
	}
	dde, err := m.entry(dstDir)
	if err != nil {
		return total, err
	}
	srcDepth := len(SplitVirtual(sde.vpath)) + 1
	srcDistributed := srcDepth <= m.n.cfg.DistributionLevel

	if !srcDistributed && sde.node == dde.node && sde.root == dde.root {
		c, err := m.withFailover(tr, srcDir, func(de *ventry) (simnet.Cost, error) {
			_, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
				FSOp{
					Kind:  FSRename,
					Path:  path.Join(sde.physPath, srcName),
					Path2: path.Join(dde.physPath, dstName),
				})
			return c, err
		})
		m.dropCachesUnder(path.Join(sde.vpath, srcName))
		m.dropCachesUnder(path.Join(dde.vpath, dstName))
		m.invalAttr(sde.vpath)
		m.invalAttr(dde.vpath)
		return simnet.Seq(total, c), err
	}

	// Cheap rename of a distributed directory within the same parent
	// (Section 4.1.4): "the rename is achieved by renaming the link ...
	// The target of the link needs not be changed" — the subtree stays
	// where its placement name hashes; only the name users see moves.
	if srcDistributed && sde.vpath == dde.vpath {
		c, ok, err := m.renameDistributedLink(tr, sde, srcName, dstName)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		if ok {
			m.dropCachesUnder(path.Join(sde.vpath, srcName))
			m.dropCachesUnder(path.Join(sde.vpath, dstName))
			return total, nil
		}
	}

	// Copy-then-delete across hierarchies or for unredirected level-1
	// directories, whose placement is their visible name ("renaming of
	// distributed subdirectories ... is equivalent to a copy ... followed
	// by a delete").
	c, err := m.copyTree(srcDir, srcName, dstDir, dstName)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	srcVH, _, c, err := m.Lookup(srcDir, srcName)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	sattr, c, err := m.Getattr(srcVH)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	if sattr.Type == localfs.TypeDir {
		c, err = m.RemoveAllPath(path.Join(sde.vpath, srcName))
	} else {
		c, err = m.Remove(srcDir, srcName)
	}
	total = simnet.Seq(total, c)
	m.forget(srcVH)
	return total, err
}

// renameDistributedLink renames a distributed directory cheaply (Section
// 4.1.4): its storage relocates LOCALLY on its node to a fresh root (the
// placement name — and hence the node — is unchanged, so no data crosses
// the network) and the special link is rewritten under the new name.
// ok=false means the cheap path does not apply (an unredirected level-1
// home, whose placement IS its name) and the caller must copy-and-delete.
func (m *Mount) renameDistributedLink(tr *obs.Trace, parent *ventry, srcName, dstName string) (simnet.Cost, bool, error) {
	n := m.n
	var total simnet.Cost
	child, _, c, err := m.materialize(tr, path.Join(parent.vpath, srcName))
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	if child.kind != localfs.TypeDir {
		return total, false, nil
	}
	// Destination must not exist.
	if _, _, c, err := m.materialize(tr, path.Join(parent.vpath, dstName)); err == nil {
		return simnet.Seq(total, c), false, &nfs.Error{Proc: nfs.ProcRename, Status: nfs.ErrExist}
	} else {
		total = simnet.Seq(total, c)
		if !nfs.IsStatus(err, nfs.ErrNoEnt) && !nfs.IsStatus(err, nfs.ErrNotDir) {
			return total, false, err
		}
	}

	if parent.place.VRoot && child.root == "/"+srcName {
		// Unredirected level-1 home: no link exists; placement is the
		// visible name, so a rename must move the data (copy + delete).
		return total, false, nil
	}

	// 1. Relocate the hierarchy to a fresh storage root on its own node —
	// a local rename, no data crosses the network. Stale resolver caches
	// for the old virtual name now dangle instead of aliasing the
	// renamed directory.
	newRoot := n.newStoreRoot(child.pn)
	_, _, c, err = n.apply(tr, child.node, Key(child.pn),
		Track{PN: child.pn, Root: newRoot},
		FSOp{Kind: FSRename, Path: child.root, Path2: newRoot})
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	target := MakeLinkTarget(child.pn, newRoot)

	// 2. Replace the link: remove the old name, create the new one.
	if !parent.place.VRoot {
		pt := Track{PN: parent.pn, Root: parent.root}
		if _, _, c, err := n.apply(tr, parent.node, Key(parent.pn), pt,
			FSOp{Kind: FSRemove, Path: path.Join(parent.physPath, srcName)}); err != nil {
			return simnet.Seq(total, c), false, err
		} else {
			total = simnet.Seq(total, c)
		}
		_, _, c, err := n.apply(tr, parent.node, Key(parent.pn), pt,
			FSOp{Kind: FSSymlink, Path: path.Join(parent.physPath, dstName), Target: target})
		total = simnet.Seq(total, c)
		return total, err == nil, err
	}

	// Level 1: the link moves between the old and new names' hash targets.
	newRes, c, err := n.route(tr, Key(dstName))
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	_, _, c, err = n.apply(tr, newRes.Node.Addr, Key(dstName),
		Track{PN: dstName, Link: path.Join("/", dstName)},
		FSOp{Kind: FSSymlink, Path: path.Join("/", dstName), Target: target})
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	oldRes, c, err := n.route(tr, Key(srcName))
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false, err
	}
	_, _, c, err = n.apply(tr, oldRes.Node.Addr, Key(srcName),
		Track{PN: srcName, Link: path.Join("/", srcName)},
		FSOp{Kind: FSRemove, Path: path.Join("/", srcName)})
	total = simnet.Seq(total, c)
	return total, err == nil, err
}

// copyTree recursively copies srcDir/srcName to dstDir/dstName via client
// operations.
func (m *Mount) copyTree(srcDir VH, srcName string, dstDir VH, dstName string) (simnet.Cost, error) {
	var total simnet.Cost
	srcVH, sattr, c, err := m.Lookup(srcDir, srcName)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	defer m.forget(srcVH)
	switch sattr.Type {
	case localfs.TypeRegular:
		dstVH, _, c, err := m.Create(dstDir, dstName, sattr.Mode, false)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		defer m.forget(dstVH)
		const chunk = 1 << 20
		for off := int64(0); ; {
			data, eof, c, err := m.Read(srcVH, off, chunk)
			total = simnet.Seq(total, c)
			if err != nil {
				return total, err
			}
			if len(data) > 0 {
				_, c, err = m.Write(dstVH, off, data)
				total = simnet.Seq(total, c)
				if err != nil {
					return total, err
				}
				off += int64(len(data))
			}
			if eof {
				return total, nil
			}
		}
	case localfs.TypeSymlink:
		target, c, err := m.Readlink(srcVH)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		vh, c, err := m.Symlink(dstDir, dstName, target)
		total = simnet.Seq(total, c)
		m.forget(vh)
		return total, err
	case localfs.TypeDir:
		dstVH, _, c, err := m.Mkdir(dstDir, dstName, sattr.Mode)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		defer m.forget(dstVH)
		ents, c, err := m.Readdir(srcVH)
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
		for _, e := range ents {
			c, err := m.copyTree(srcVH, e.Name, dstVH, e.Name)
			total = simnet.Seq(total, c)
			if err != nil {
				return total, err
			}
		}
		return total, nil
	default:
		return total, &nfs.Error{Proc: nfs.ProcRename, Status: nfs.ErrInval}
	}
}
