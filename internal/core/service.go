package core

import (
	"fmt"
	"time"

	"repro/internal/cas"
	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// procHandler serves one decoded procedure of a node service. The decoder
// is positioned just past the procedure number; the handler decodes its own
// arguments, encodes the reply into e, and returns the simulated cost. A
// non-nil error is a malformed request (or internal failure) and aborts the
// RPC without a reply body; application-level failures are encoded replies.
// The trace context is the caller's span context when the request arrived
// over a context-aware transport, and the zero value otherwise; handlers
// that issue downstream RPCs thread it so the fan-out parents correctly.
type procHandler func(n *Node, ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error)

// serviceTable maps procedure numbers to handlers. Both node services (the
// kosha replication service and the koshactl administrative service) are
// plain tables dispatched through the same path, so adding a procedure is a
// table entry plus a handler rather than a new arm in a monolithic switch.
type serviceTable map[uint32]procHandler

// dispatch decodes the procedure number and routes to the table entry.
func (n *Node) dispatch(table serviceTable, service string, ctx obs.TraceContext, from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	d := wire.NewDecoder(req)
	proc := d.Uint32()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	h, ok := table[proc]
	if !ok {
		return nil, 0, fmt.Errorf("%s: unknown proc %d", service, proc)
	}
	e := wire.NewEncoder(256)
	cost, err := h(n, ctx, from, d, e)
	if err != nil {
		return nil, cost, err
	}
	return cp(e), cost, nil
}

// koshaProcs is the kosha replication service (Sections 4.2-4.4).
var koshaProcs = serviceTable{
	kApply:         (*Node).serveApply,
	kMirror:        (*Node).serveMirror,
	kStatTree:      (*Node).serveStatTree,
	kUntrack:       (*Node).serveUntrack,
	kPromote:       (*Node).servePromote,
	kReplicas:      (*Node).serveReplicas,
	kTreeDigest:    (*Node).serveTreeDigest,
	kDirDigests:    (*Node).serveDirDigests,
	kChunkManifest: (*Node).serveChunkManifest,
	kChunkFetch:    (*Node).serveChunkFetch,
}

func (n *Node) handleKosha(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	return n.dispatch(koshaProcs, "kosha", obs.TraceContext{}, from, req)
}

// handleKoshaCtx is the context-aware variant registered on transports that
// propagate trace contexts; the handler context is the server span allocated
// by the transport, so downstream RPCs (replica mirroring, root adoption)
// nest under it in the assembled trace tree.
func (n *Node) handleKoshaCtx(ctx obs.TraceContext, from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	return n.dispatch(koshaProcs, "kosha", ctx, from, req)
}

// serveApply executes a mutation at the primary and fans out to replicas.
func (n *Node) serveApply(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	r := decodeApplyReq(d)
	if d.Err() != nil {
		return 0, d.Err()
	}
	// Primary check: all accesses go to the primary replica (Section
	// 4.2). The check is active — a better candidate is pinged and
	// purged if dead — so a node bordering a fresh failure accepts
	// ownership immediately (Section 4.4).
	var checkCost simnet.Cost
	if !r.Key.IsZero() {
		isRoot, c := n.overlay.EnsureRootFor(r.Key)
		checkCost = c
		if !isRoot {
			e.PutUint32(codeNotPrimary)
			putApplyReplyBody(e, localfs.Attr{}, nfs.Handle{}, 0)
			return checkCost, nil
		}
		// Cold path after an ownership change: surface the local
		// replica-area copy and adopt any newer version (or newer
		// deletion) a current replica holds. Skipped when the primary
		// path already exists — the warm, per-mutation case.
		if r.Track.Root != "" {
			if _, err := n.store.LookupPath(r.Track.Root); err != nil {
				c, _ := n.rep.AdoptRoot(ctx, r.Track)
				checkCost = simnet.Seq(checkCost, c)
			}
		}
	}
	attr, cost, err := n.applyFSOp(r.Op, false)
	if err != nil {
		e.PutUint32(codeNFSBase + uint32(nfs.ToStatus(err)))
		putApplyReplyBody(e, localfs.Attr{}, nfs.Handle{}, 0)
		return simnet.Seq(checkCost, cost), nil
	}
	r.Track = n.rep.Stamp(r.Track, r.Op)
	n.rep.Track(r.Track, r.Op)
	// Fan out to the K leaf-set replicas; the primary "forwards the
	// RPC to all the replicas" (Section 4.2). Failures are tolerated:
	// replica repair happens on membership change. Removals of a whole
	// hierarchy (or level-1 link) additionally reach every leaf-set
	// member: former replica candidates may still hold copies, and a
	// deletion they miss would resurrect when ownership drifts to them.
	targets := n.overlay.ReplicaCandidates(n.cfg.Replicas)
	removesRoot := (r.Op.Kind == FSRmdir || r.Op.Kind == FSRemoveAll) && r.Op.Path == r.Track.Root
	removesLink := r.Op.Kind == FSRemove && r.Track.Link != ""
	if removesRoot || removesLink {
		targets = n.overlay.Leaf()
	}
	var fanout []simnet.Cost
	for _, rep := range targets {
		c, _ := n.mirror(ctx, rep.Addr, r.Track, r.Op)
		fanout = append(fanout, c)
	}
	if len(targets) > 0 {
		n.repCount.Add(1)
		n.repFanout.Add(uint64(len(targets)))
		n.repHist.Observe(time.Duration(simnet.Par(fanout...)))
	}
	if n.cfg.SyncReplication {
		cost = simnet.Seq(checkCost, cost, simnet.Par(fanout...))
	} else {
		cost = simnet.Seq(checkCost, cost)
	}
	e.PutUint32(codeOK)
	putApplyReplyBody(e, attr, nfs.Handle{Gen: n.nsrvGen(), Ino: attr.Ino}, len(targets))
	return cost, nil
}

// serveMirror executes a mutation at a replica (no fan-out).
func (n *Node) serveMirror(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	r := decodeApplyReq(d)
	if d.Err() != nil {
		return 0, d.Err()
	}
	// Replica copies live in the reserved replica area, outside the
	// primary namespace ("the replicas are inaccessible to the local
	// users", Section 4.2). A migration push addressed to this node as
	// the key's new primary lands in the primary namespace directly.
	if !r.Primary {
		r.Op.Path = RepPath(r.Op.Path)
		if r.Op.Path2 != "" {
			r.Op.Path2 = RepPath(r.Op.Path2)
		}
	}
	attr, cost, err := n.applyFSOp(r.Op, true)
	if err != nil {
		e.PutUint32(codeNFSBase + uint32(nfs.ToStatus(err)))
		putApplyReplyBody(e, localfs.Attr{}, nfs.Handle{}, 0)
		return cost, nil
	}
	n.rep.Track(r.Track, r.Op)
	e.PutUint32(codeOK)
	putApplyReplyBody(e, attr, nfs.Handle{Gen: n.nsrvGen(), Ino: attr.Ino}, 0)
	return cost, nil
}

// serveStatTree summarizes the local subtree at a path.
func (n *Node) serveStatTree(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	root := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	st := n.rep.StatLocal(root)
	// Version is keyed by the primary-relative root regardless of the
	// area being statted.
	st.Ver = n.rep.VerOf(repl.PrimaryRoot(root))
	e.PutUint32(codeOK)
	e.PutBool(st.Exists)
	e.PutInt64(st.Files)
	e.PutInt64(st.Dirs)
	e.PutInt64(st.Bytes)
	e.PutBool(st.Flag)
	e.PutUint64(st.Ver)
	return n.cfg.Disk.OpCost(0), nil
}

// serveTreeDigest reports the Merkle digest summary of the local subtree at
// a path: the anti-entropy fast path ("has anything changed?") answered in
// one exchange.
func (n *Node) serveTreeDigest(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	root := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	td := n.rep.DigestLocal(root)
	// Version is keyed by the primary-relative root regardless of the
	// area being digested.
	td.Ver = n.rep.VerOf(repl.PrimaryRoot(root))
	e.PutUint32(codeOK)
	e.PutBool(td.Exists)
	e.PutBool(td.Flag)
	e.PutUint64(td.Ver)
	e.PutDigest(td.Root)
	return n.cfg.Disk.OpCost(0), nil
}

// serveDirDigests lists the immediate children of a local directory with
// their subtree digests — one level of the delta walk.
func (n *Node) serveDirDigests(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	dir := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	ents, ok, err := n.rep.DirDigestsLocal(dir)
	if err != nil {
		e.PutUint32(codeNFSBase + uint32(nfs.ToStatus(err)))
		return n.cfg.Disk.OpCost(0), nil
	}
	e.PutUint32(codeOK)
	e.PutBool(ok)
	merkle.PutEntries(e, ents)
	return n.cfg.Disk.OpCost(len(ents) * 64), nil
}

// serveUntrack drops root-tracking metadata for a removed subtree.
func (n *Node) serveUntrack(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	root := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	n.rep.Untrack(root)
	e.PutUint32(codeOK)
	return 0, nil
}

// serveReplicas reports the primary's current replica holders for a key.
func (n *Node) serveReplicas(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	var key id.ID
	d.FixedOpaque(key[:])
	if d.Err() != nil {
		return 0, d.Err()
	}
	if isRoot, cost := n.overlay.EnsureRootFor(key); !isRoot {
		e.PutUint32(codeNotPrimary)
		return cost, nil
	}
	reps := n.overlay.ReplicaCandidates(n.cfg.Replicas)
	e.PutUint32(codeOK)
	e.PutUint32(uint32(len(reps)))
	for _, rep := range reps {
		e.PutString(string(rep.Addr))
	}
	return 0, nil
}

// servePromote surfaces a replica-area copy at the new primary.
func (n *Node) servePromote(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	t := getTrack(d)
	if d.Err() != nil {
		return 0, d.Err()
	}
	key := Key(t.PN)
	isRoot, cost := n.overlay.EnsureRootFor(key)
	if !isRoot {
		e.PutUint32(codeNotPrimary)
		return cost, nil
	}
	c, changed := n.rep.AdoptRoot(ctx, t)
	cost = simnet.Seq(cost, c)
	e.PutUint32(codeOK)
	e.PutBool(changed)
	return simnet.Seq(cost, n.cfg.Disk.OpCost(0)), nil
}

// serveChunkManifest answers a CHUNK_MANIFEST negotiation: the chunk
// manifest of the local regular file at phys (computing it also indexes the
// file's blocks, so a stale local copy of the very file being negotiated
// yields HAVE answers for its unchanged chunks) plus HAVE bits for the
// caller's WANT list.
func (n *Node) serveChunkManifest(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	phys := d.String()
	want := cas.GetHashes(d)
	if d.Err() != nil {
		return 0, d.Err()
	}
	man, exists := n.rep.ManifestLocal(phys)
	have := n.rep.HaveBlocks(want)
	e.PutUint32(codeOK)
	e.PutBool(exists)
	cas.PutManifest(e, man)
	cas.PutBools(e, have)
	return n.cfg.Disk.OpCost(len(man)*36 + len(want)*32), nil
}

// serveChunkFetch serves block bytes by content hash (CHUNK_FETCH). The phys
// hint names a file whose manifest covers the hashes: indexing it on demand
// lets a holder that never digested its copy still answer. Each reply slot
// carries a presence bool so missing blocks are distinguishable from empty
// ones; callers hash-verify whatever comes back.
func (n *Node) serveChunkFetch(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	phys := d.String()
	hashes := cas.GetHashes(d)
	if d.Err() != nil {
		return 0, d.Err()
	}
	if phys != "" {
		n.rep.ManifestLocal(phys)
	}
	e.PutUint32(codeOK)
	e.PutUint32(uint32(len(hashes)))
	total := 0
	for _, h := range hashes {
		b, ok := n.rep.GetBlock(h)
		e.PutBool(ok)
		if ok {
			e.PutOpaque(b)
			total += len(b)
		}
	}
	return n.cfg.Disk.OpCost(total), nil
}

func putApplyReplyBody(e *wire.Encoder, attr localfs.Attr, fh nfs.Handle, fanout int) {
	e.PutUint64(attr.Ino)
	e.PutUint32(uint32(attr.Type))
	e.PutUint32(attr.Mode)
	e.PutInt64(attr.Size)
	e.PutUint64(fh.Gen)
	e.PutUint64(fh.Ino)
	e.PutUint32(uint32(fanout)) // replica fan-out width, for trace records
}

func getApplyReplyBody(d *wire.Decoder) (localfs.Attr, nfs.Handle, int) {
	var attr localfs.Attr
	attr.Ino = d.Uint64()
	attr.Type = localfs.FileType(d.Uint32())
	attr.Mode = d.Uint32()
	attr.Size = d.Int64()
	var fh nfs.Handle
	fh.Gen = d.Uint64()
	fh.Ino = d.Uint64()
	return attr, fh, int(d.Uint32())
}

func cp(e *wire.Encoder) []byte { return append([]byte(nil), e.Bytes()...) }
