package core

import (
	"testing"

	"repro/internal/localfs"
	"repro/internal/nfs"
)

func TestResolveDirRootPlace(t *testing.T) {
	_, nodes := testCluster(t, 3, 301, Config{})
	pl, cost, err := nodes[0].ResolveDir(nil)
	if err != nil || !pl.VRoot || cost != 0 {
		t.Fatalf("root place = %+v cost=%v err=%v", pl, cost, err)
	}
	if pl.PN() != "" || pl.SubtreeRoot() != "/" {
		t.Fatalf("root chain: pn=%q root=%q", pl.PN(), pl.SubtreeRoot())
	}
}

func TestResolveDirCachesLevels(t *testing.T) {
	_, nodes := testCluster(t, 4, 302, Config{DistributionLevel: 2})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/proj/sub/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// First resolution pays overlay routes; the second is served from the
	// directory cache and must be cheaper.
	nodes[0].cacheMu.Lock()
	nodes[0].dirCache = make(map[string]Place)
	nodes[0].cacheMu.Unlock()
	_, cold, err := nodes[0].ResolvePath("/proj/sub")
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := nodes[0].ResolvePath("/proj/sub")
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("cached resolution (%v) not cheaper than cold (%v)", warm, cold)
	}
	if warm != 0 {
		t.Fatalf("fully cached resolution should be free, got %v", warm)
	}
}

func TestResolveDirDeterministicAcrossNodes(t *testing.T) {
	_, nodes := testCluster(t, 6, 303, Config{DistributionLevel: 3})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/a/b/c/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	want, _, err := nodes[0].ResolvePath("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nodes); i++ {
		got, _, err := nodes[i].ResolvePath("/a/b/c")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if got.Node != want.Node || got.PN() != want.PN() {
			t.Fatalf("node %d resolves to %s/%s, node 0 to %s/%s",
				i, got.Node, got.PN(), want.Node, want.PN())
		}
	}
}

func TestResolveRejectsFileAsDirectory(t *testing.T) {
	_, nodes := testCluster(t, 3, 304, Config{DistributionLevel: 2})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/top/file.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// file.txt sits at a distributed depth; resolving it as a directory
	// must yield NotDir (which materialize uses to fall back to the
	// file-leaf path).
	_, _, err := nodes[0].ResolveDir([]string{"top", "file.txt"})
	if !nfs.IsStatus(err, nfs.ErrNotDir) {
		t.Fatalf("err = %v", err)
	}
	// The mount-level lookup handles the fallback.
	_, attr, _, err := m.LookupPath("/top/file.txt")
	if err != nil || attr.Type != localfs.TypeRegular {
		t.Fatalf("lookup: %+v err=%v", attr, err)
	}
}

func TestResolveMissingLevels(t *testing.T) {
	_, nodes := testCluster(t, 3, 305, Config{DistributionLevel: 2})
	if _, _, err := nodes[0].ResolvePath("/nothing/here"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("err = %v", err)
	}
}

func TestVersionBumpsPerMutation(t *testing.T) {
	_, nodes := testCluster(t, 4, 306, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/v/f", []byte("a")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/v")
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	before := primary.verOf(pl.SubtreeRoot())
	if before == 0 {
		t.Fatal("version not established at creation")
	}
	for i := 0; i < 3; i++ {
		if _, err := m.WriteFile("/v/f", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	after := primary.verOf(pl.SubtreeRoot())
	if after < before+3 {
		t.Fatalf("version %d -> %d after 3 writes", before, after)
	}
}

func TestTombstoneOnRemoval(t *testing.T) {
	_, nodes := testCluster(t, 4, 307, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/dead/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/dead")
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	verAlive := primary.verOf(pl.SubtreeRoot())
	if _, err := m.RemoveAllPath("/dead"); err != nil {
		t.Fatal(err)
	}
	if !primary.isDead(pl.SubtreeRoot()) {
		t.Fatal("removal did not tombstone the root")
	}
	if primary.verOf(pl.SubtreeRoot()) <= verAlive {
		t.Fatal("tombstone version not above the live version")
	}
	// Re-creation clears the tombstone and continues the version chain.
	if _, err := m.WriteFile("/dead/f2", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	pl2, _, err := nodes[0].ResolvePath("/dead")
	if err != nil {
		t.Fatal(err)
	}
	var p2 *Node
	for _, nd := range nodes {
		if nd.Addr() == pl2.Node {
			p2 = nd
		}
	}
	if p2.isDead(pl2.SubtreeRoot()) {
		t.Fatal("recreated root still tombstoned")
	}
	data, _, err := m.ReadFile("/dead/f2")
	if err != nil || string(data) != "reborn" {
		t.Fatalf("reborn read %q err=%v", data, err)
	}
}

func TestDemotePreservesDataInReplicaArea(t *testing.T) {
	_, nodes := testCluster(t, 4, 308, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/dm/f", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/dm")
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	t0 := Track{PN: pl.PN(), Root: pl.SubtreeRoot()}
	primary.demoteLocal(t0)
	if _, err := primary.Store().LookupPath(pl.SubtreeRoot()); err == nil {
		t.Fatal("primary path still present after demotion")
	}
	data, err := primary.Store().ReadFile(RepPath(pl.SubtreeRoot()) + "/f")
	if err != nil || string(data) != "kept" {
		t.Fatalf("replica-area copy: %q err=%v", data, err)
	}
	// Promotion round-trips it back.
	primary.promoteLocal(t0)
	data, err = primary.Store().ReadFile(pl.SubtreeRoot() + "/f")
	if err != nil || string(data) != "kept" {
		t.Fatalf("after promote: %q err=%v", data, err)
	}
}
