package core

import (
	"path"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Path-level conveniences for applications and experiments, built on the
// handle-level operations, plus the cluster-wide statfs view.

// LookupPath resolves a whole virtual path to a handle.
func (m *Mount) LookupPath(vpath string) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.begin(obs.OpcLookup, vpath)
	total := m.n.cfg.InterposeCost
	de, attr, cost, err := m.materializeRetry(o.tr, vpath)
	total = simnet.Seq(total, cost)
	if err != nil {
		o.done(total, err)
		return 0, localfs.Attr{}, total, err
	}
	o.done(total, nil)
	if de.place.VRoot {
		return RootVH, attr, total, nil
	}
	return m.insert(de), attr, total, nil
}

// dropMetaForPath invalidates this mount's metadata caches for a path's
// whole top-level subtree plus resolver entries along the path — the
// recovery hammer the path helpers swing before redriving after a failure
// that implicates cached state.
func (m *Mount) dropMetaForPath(vpath string) {
	m.dropCachesUnder(vpath)
	if parts := SplitVirtual(vpath); len(parts) > 0 {
		m.dropMetaUnder(JoinVirtual(parts[:1]))
	}
}

// MkdirAll creates a directory path and any missing ancestors. A NOENT on
// the way can mean a name-cache entry went stale mid-walk (another client
// removed or renamed a component); the walk redrives once with fresh
// resolutions before giving up.
func (m *Mount) MkdirAll(vpath string) (VH, simnet.Cost, error) {
	vh, total, err := m.mkdirAllOnce(vpath)
	if err != nil && cacheSuspect(err) {
		m.dropMetaForPath(vpath)
		vh2, c, err2 := m.mkdirAllOnce(vpath)
		return vh2, simnet.Seq(total, c), err2
	}
	return vh, total, err
}

func (m *Mount) mkdirAllOnce(vpath string) (VH, simnet.Cost, error) {
	parts := SplitVirtual(vpath)
	var total simnet.Cost
	cur := m.Root()
	for i, name := range parts {
		next, _, c, err := m.Lookup(cur, name)
		total = simnet.Seq(total, c)
		if err != nil {
			if !nfs.IsStatus(err, nfs.ErrNoEnt) {
				return 0, total, err
			}
			next, _, c, err = m.Mkdir(cur, name, 0o755)
			total = simnet.Seq(total, c)
			if err != nil {
				return 0, total, err
			}
		}
		if i > 0 && cur != m.Root() {
			m.forget(cur)
		}
		cur = next
	}
	return cur, total, nil
}

// WriteFile creates (or truncates) a file at a virtual path and writes
// data. Like MkdirAll, it redrives once on a staleness-shaped failure.
func (m *Mount) WriteFile(vpath string, data []byte) (simnet.Cost, error) {
	total, err := m.writeFileOnce(vpath, data)
	if err != nil && cacheSuspect(err) {
		m.dropMetaForPath(vpath)
		c, err2 := m.writeFileOnce(vpath, data)
		return simnet.Seq(total, c), err2
	}
	return total, err
}

func (m *Mount) writeFileOnce(vpath string, data []byte) (simnet.Cost, error) {
	dir, base := path.Split(path.Clean("/" + vpath))
	dirVH, total, err := m.MkdirAll(dir)
	if err != nil {
		return total, err
	}
	fvh, _, c, err := m.Create(dirVH, base, 0o644, false)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	defer m.forget(fvh)
	_, c, err = m.Write(fvh, 0, data)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	// Under write-back the Write above may only have buffered. WriteFile's
	// contract is an acknowledged durable write, so flush before the handle
	// is dropped: forget's flush is best-effort and would swallow the error,
	// acknowledging data that was never placed.
	c, err = m.flushVH(nil, fvh)
	return simnet.Seq(total, c), err
}

// ReadFile reads a whole file at a virtual path. It reads to EOF rather
// than trusting the looked-up size, so a concurrent append through another
// node can never truncate the result.
func (m *Mount) ReadFile(vpath string) ([]byte, simnet.Cost, error) {
	vh, _, total, err := m.LookupPath(vpath)
	if err != nil {
		return nil, total, err
	}
	defer m.forget(vh)
	var data []byte
	const chunk = 1 << 20
	for {
		d, eof, c, err := m.Read(vh, int64(len(data)), chunk)
		total = simnet.Seq(total, c)
		if err != nil {
			return nil, total, err
		}
		data = append(data, d...)
		if eof || len(d) == 0 {
			return data, total, nil
		}
	}
}

// RemoveAllPath recursively removes a virtual subtree.
func (m *Mount) RemoveAllPath(vpath string) (simnet.Cost, error) {
	parts := SplitVirtual(vpath)
	if len(parts) == 0 {
		return 0, &nfs.Error{Proc: nfs.ProcRmdir, Status: nfs.ErrInval}
	}
	parentVH, _, total, err := m.LookupPath(JoinVirtual(parts[:len(parts)-1]))
	if err != nil {
		return total, err
	}
	defer m.forget(parentVH)
	c, err := m.removeAllIn(parentVH, parts[len(parts)-1])
	return simnet.Seq(total, c), err
}

// removeAllIn removes dir/name recursively. NOENT at any step means
// another client (or a stale cache entry standing in for one) already
// removed that piece — the goal state, so it counts as success.
func (m *Mount) removeAllIn(dir VH, name string) (simnet.Cost, error) {
	vh, attr, total, err := m.Lookup(dir, name)
	if err != nil {
		if nfs.IsStatus(err, nfs.ErrNoEnt) {
			return total, nil
		}
		return total, err
	}
	if attr.Type != localfs.TypeDir {
		m.forget(vh)
		c, err := m.Remove(dir, name)
		if nfs.IsStatus(err, nfs.ErrNoEnt) {
			err = nil
		}
		return simnet.Seq(total, c), err
	}
	ents, c, err := m.Readdir(vh)
	total = simnet.Seq(total, c)
	if err != nil {
		m.forget(vh)
		if nfs.IsStatus(err, nfs.ErrNoEnt) {
			return total, nil
		}
		return total, err
	}
	for _, e := range ents {
		c, err := m.removeAllIn(vh, e.Name)
		total = simnet.Seq(total, c)
		if err != nil {
			m.forget(vh)
			return total, err
		}
	}
	m.forget(vh)
	c, err = m.Rmdir(dir, name)
	if nfs.IsStatus(err, nfs.ErrNoEnt) {
		err = nil
	}
	return simnet.Seq(total, c), err
}

// ClusterStat aggregates contributed-space accounting across every node
// this mount's koshad knows about — the "single large storage" view the
// paper's introduction promises (unused desktop space harvested into one
// shared file system).
type ClusterStat struct {
	Nodes      int
	TotalBytes int64 // sum of contributed capacities (0 entries = unlimited)
	UsedBytes  int64
	Files      int64 // file copies stored, replicas included
	Unlimited  int   // nodes contributing without a cap
}

// Statfs sums FSSTAT over the local node and every known peer.
func (m *Mount) Statfs() (ClusterStat, simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	var out ClusterStat
	nodes := []simnet.Addr{m.n.addr}
	for _, p := range m.n.overlay.Known() {
		nodes = append(nodes, p.Addr)
	}
	for _, addr := range nodes {
		st, c, err := m.n.remoteFSStat(addr)
		total = simnet.Seq(total, c)
		if err != nil {
			continue
		}
		out.Nodes++
		out.UsedBytes += st.UsedBytes
		out.Files += st.Files
		if st.TotalBytes == 0 {
			out.Unlimited++
		} else {
			out.TotalBytes += st.TotalBytes
		}
	}
	return out, total, nil
}
