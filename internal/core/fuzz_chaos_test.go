package core_test

// The chaos-schedule fuzzer lives in core's external test package: the chaos
// harness imports cluster, which imports core, so an in-package fuzz test
// would be an import cycle. It extends the fuzz suite in fuzz_test.go from
// pure helpers up to whole-cluster behavior: arbitrary bytes decode into a
// guarded fault schedule, and the harness's oracle invariants — no
// acknowledged write lost, no fabricated read contents, replica counts back
// at K after quiescence — must hold for every one of them.

import (
	"testing"
	"time"

	"repro/internal/chaos"
)

const fuzzNodes = 6

// corpusSchedules mirror the scripted scenario table in
// internal/chaos/chaos_test.go, giving the fuzzer meaningful starting points
// (crash-during-write, partition-heal, replica loss, flapping, lossy link).
func corpusSchedules() [][]chaos.Step {
	flap := make([]chaos.Step, 0, 8)
	for i := 0; i < 4; i++ {
		flap = append(flap,
			chaos.Step{Kind: chaos.OpCrash, A: 4},
			chaos.Step{Kind: chaos.OpRevive, A: 4},
		)
	}
	return [][]chaos.Step{
		{
			{Kind: chaos.OpCrash, A: 3},
			{Kind: chaos.OpStabilize},
			{Kind: chaos.OpRevive, A: 3},
			{Kind: chaos.OpStabilize},
		},
		{
			{Kind: chaos.OpPartition, A: 2, B: 4},
			{Kind: chaos.OpPartition, A: 4, B: 2},
			{Kind: chaos.OpStabilize},
			{Kind: chaos.OpHeal},
			{Kind: chaos.OpStabilize},
		},
		{
			{Kind: chaos.OpCrash, A: 1},
			{Kind: chaos.OpCrash, A: 2},
			{Kind: chaos.OpStabilize},
			{Kind: chaos.OpRevive, A: 1},
			{Kind: chaos.OpRevive, A: 2},
			{Kind: chaos.OpStabilize},
		},
		flap,
		{
			{Kind: chaos.OpLossy, A: 2, P: 3.0 / 16},
			{Kind: chaos.OpDup, P: 4.0 / 16},
			{Kind: chaos.OpStabilize},
			{Kind: chaos.OpDelay, A: 3, D: 50 * time.Millisecond},
			{Kind: chaos.OpClearFaults},
			{Kind: chaos.OpStabilize},
		},
	}
}

// FuzzChaosSchedule decodes arbitrary bytes into a fault schedule and runs it
// through the deterministic harness. Any invariant violation surfaces as an
// error carrying the seed and the decoded schedule, so every crasher in the
// corpus is replayable as a scripted scenario.
func FuzzChaosSchedule(f *testing.F) {
	for _, sched := range corpusSchedules() {
		f.Add(int64(1), chaos.Encode(sched))
	}
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 64 { // 16 steps: keep one fuzz case sub-second
			raw = raw[:64]
		}
		steps := chaos.Decode(raw, fuzzNodes)
		rep, err := chaos.Run(chaos.Options{
			Nodes:      fuzzNodes,
			Seed:       seed,
			Steps:      steps,
			OpsPerStep: 2,
		})
		if err != nil {
			t.Fatalf("seed %d schedule %v: %v", seed, steps, err)
		}
		if rep.Ops > 0 && rep.Availability() < 0 {
			t.Fatalf("negative availability: %+v", rep)
		}
	})
}
