package core

import (
	"strings"
	"testing"
)

// FuzzPlacementFunctions checks that path/placement helpers never panic and
// preserve their invariants on arbitrary input.
func FuzzPlacementFunctions(f *testing.F) {
	f.Add("/alice/docs/file.txt", 2)
	f.Add("", 0)
	f.Add("///a//b/../c", 9)
	f.Add("name#12345678", 1)
	f.Fuzz(func(t *testing.T, vpath string, level int) {
		parts := SplitVirtual(vpath)
		joined := JoinVirtual(parts)
		// Re-splitting the join is a fixed point.
		again := SplitVirtual(joined)
		if len(again) != len(parts) {
			t.Fatalf("split/join not stable: %v vs %v", parts, again)
		}
		for i := range parts {
			if parts[i] != again[i] {
				t.Fatalf("component %d changed", i)
			}
		}
		d := ControllingDepth(len(parts), level)
		if d < 0 || d > len(parts) {
			t.Fatalf("depth %d out of range for %d parts", d, len(parts))
		}
		if len(parts) > 0 && d == 0 {
			t.Fatal("non-empty path with zero controlling depth")
		}
		// Salting round-trips for any VALID name (names matching the
		// salted pattern are rejected by ValidName at creation time, so
		// the ambiguity cannot arise in a live system).
		if len(parts) > 0 && ValidName(parts[0]) == nil {
			name := parts[0]
			for a := 0; a < 3; a++ {
				pn := Salted(name, a)
				if BaseName(pn) != name {
					t.Fatalf("BaseName(Salted(%q,%d)) = %q", name, a, BaseName(pn))
				}
			}
		}
		// Link targets round-trip unless the name itself embeds the
		// separator byte (reserved, rejected by ValidName).
		if !strings.Contains(vpath, "\x03") {
			pn, store, ok := ParseLinkTarget(MakeLinkTarget(vpath, "/store"))
			if !ok || pn != vpath || store != "/store" {
				t.Fatal("link target round trip failed")
			}
		}
		if _, _, ok := ParseLinkTarget(strings.TrimPrefix(vpath, LinkMarker)); ok && !strings.HasPrefix(strings.TrimPrefix(vpath, LinkMarker), LinkMarker) {
			t.Fatal("unmarked target recognized as special")
		}
	})
}
