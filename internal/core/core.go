package core
