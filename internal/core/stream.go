package core

import (
	"sort"
	"sync"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// This file is the client side of the streaming data path: a per-handle
// readahead window that turns sequential READs into pipelined READSTREAM
// window fetches, and a per-handle write-back buffer that coalesces adjacent
// WRITEs into one vectored flush. Both are off by default (stop-and-wait,
// write-through) and enabled by Config.ReadaheadChunks / WriteBackBytes.

// wbMaxSpans bounds how many disjoint spans a write-back buffer holds before
// it flushes regardless of the byte high-water mark, so a pathological
// strided writer cannot grow the span vector without bound.
const wbMaxSpans = 16

// stream is the streaming state of one virtual handle: the readahead buffer
// (one fetched window, consumed front to back), the sequential-access
// cursor, cached replica handles for window fan-out, and the write-back
// span buffer.
type stream struct {
	mu sync.Mutex

	// Readahead. buf holds prefetched bytes starting at file offset bufOff;
	// bufEOF records that the file ended within the fetched window. nextOff
	// is where a sequential reader would read next — a miss at exactly
	// nextOff is a confirmed sequential pattern and triggers a window fetch.
	nextOff int64
	buf     []byte
	bufOff  int64
	bufEOF  bool
	repFH   map[simnet.Addr]nfs.Handle // replica-area handles for fan-out

	// Write-back: disjoint dirty spans and their total payload size.
	spans   []nfs.WriteSpan
	wbBytes int
}

// serve answers a read from the prefetched buffer. ok=false is a miss. The
// consumed prefix is dropped so a stream never holds more than one window.
func (st *stream) serve(offset int64, count int) (data []byte, eof, ok bool) {
	end := st.bufOff + int64(len(st.buf))
	if st.bufEOF && offset >= end {
		// The window saw EOF and the cursor is past it: answer the reader's
		// final probe without a round trip.
		st.nextOff = offset
		return nil, true, true
	}
	if offset < st.bufOff || offset >= end {
		return nil, false, false
	}
	lo := int(offset - st.bufOff)
	hi := lo + count
	if hi > len(st.buf) {
		hi = len(st.buf)
	}
	data = st.buf[lo:hi:hi]
	eof = st.bufEOF && hi == len(st.buf)
	st.buf = st.buf[hi:]
	st.bufOff += int64(hi)
	st.nextOff = offset + int64(len(data))
	return data, eof, true
}

// discard cancels the prefetched window (seek or close), returning how many
// fetched-but-unread bytes it wasted.
func (st *stream) discard() int {
	n := len(st.buf)
	st.buf, st.bufOff, st.bufEOF = nil, 0, false
	return n
}

// absorb merges one write into the span buffer: grow an adjacent span or
// open a new one. ok=false reports an overlap with buffered data — the
// caller flushes first so bytes always land in write order.
func (st *stream) absorb(offset int64, data []byte) bool {
	end := offset + int64(len(data))
	var adj *nfs.WriteSpan
	prepend := false
	for i := range st.spans {
		s := &st.spans[i]
		sEnd := s.Offset + int64(len(s.Data))
		if end > s.Offset && offset < sEnd {
			return false
		}
		if offset == sEnd {
			adj, prepend = s, false
		} else if end == s.Offset {
			adj, prepend = s, true
		}
	}
	switch {
	case adj == nil:
		st.spans = append(st.spans, nfs.WriteSpan{Offset: offset, Data: append([]byte(nil), data...)})
	case prepend:
		adj.Data = append(append([]byte(nil), data...), adj.Data...)
		adj.Offset = offset
	default:
		adj.Data = append(adj.Data, data...)
	}
	st.wbBytes += len(data)
	return true
}

// streamOf returns the handle's stream state, creating it when create is
// set. The table is only ever populated when streaming is enabled, so the
// default configuration pays one empty-map lookup at most.
func (m *Mount) streamOf(vh VH, create bool) *stream {
	m.smu.Lock()
	defer m.smu.Unlock()
	st := m.streams[vh]
	if st == nil && create {
		st = &stream{}
		m.streams[vh] = st
	}
	return st
}

// cancelStream drops the handle's stream state, counting any unread
// prefetched bytes as wasted readahead.
func (m *Mount) cancelStream(vh VH) {
	m.smu.Lock()
	st := m.streams[vh]
	delete(m.streams, vh)
	m.smu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if n := st.discard(); n > 0 {
		m.n.raWasted.Add(uint64(n))
	}
	st.mu.Unlock()
}

// --- readahead ---

// readAhead serves a Read through the handle's sliding window. A hit on the
// prefetched buffer costs only the interposition constant plus the loopback
// copy; a miss at the sequential cursor fetches the next window with one
// pipelined READSTREAM (fanned out across replica holders when replica
// reads are on); any other miss — a seek — cancels the window and falls
// back to a plain stop-and-wait READ.
func (m *Mount) readAhead(tr *obs.Trace, vh VH, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	st := m.streamOf(vh, true)
	st.mu.Lock()
	defer st.mu.Unlock()
	if data, eof, ok := st.serve(offset, count); ok {
		// A window hit is a client-side cache hit: it costs only the
		// interposition constant, the same convention the attribute cache
		// uses (forwarded READs don't charge the loopback leg either).
		m.n.raHits.Add(1)
		return data, eof, m.n.cfg.InterposeCost, nil
	}
	if w := st.discard(); w > 0 {
		m.n.raWasted.Add(uint64(w))
	}
	sequential := offset == st.nextOff
	var data []byte
	var eof bool
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		if de.kind != localfs.TypeRegular || !sequential {
			if m.n.cfg.ReadFromReplicas && m.n.cfg.Replicas > 0 && de.kind == localfs.TypeRegular {
				if d, e, c, ok := m.readViaReplica(tr, de, offset, count); ok {
					data, eof = d, e
					return c, nil
				}
			}
			d, e, c, rerr := m.n.nfsT(tr).Read(de.node, de.fh, offset, count)
			if rerr != nil {
				return c, rerr
			}
			data, eof = d, e
			m.countRead(de.node)
			if de.node == m.n.addr {
				c = simnet.Seq(c, m.n.cfg.LoopbackXfer(len(d)))
			}
			return c, nil
		}
		c, ferr := m.fillWindow(tr, de, st, offset)
		if ferr != nil {
			return c, ferr
		}
		d, e, _ := st.serve(offset, count)
		data, eof = d, e
		if de.node == m.n.addr {
			c = simnet.Seq(c, m.n.cfg.LoopbackXfer(len(d)))
		}
		return c, nil
	})
	if err != nil {
		return nil, false, cost, err
	}
	st.nextOff = offset + int64(len(data))
	return data, eof, cost, nil
}

// fillWindow fetches one readahead window starting at offset into the
// stream buffer. With ReadFromReplicas the window fans out bitswap-style:
// contiguous chunk ranges are pulled from the primary and its replica
// holders concurrently (the cost is the slowest segment, not the sum) and
// stitched back in order. A replica-side failure never fails the window —
// its segment is refetched from the primary.
func (m *Mount) fillWindow(tr *obs.Trace, de *ventry, st *stream, offset int64) (simnet.Cost, error) {
	chunk, window := m.n.cfg.StreamChunk, m.n.cfg.ReadaheadChunks
	var total simnet.Cost

	type segment struct {
		addr   simnet.Addr
		fh     nfs.Handle
		off    int64
		chunks int
		rep    bool
	}
	segs := []segment{{addr: de.node, fh: de.fh, off: offset, chunks: window}}
	if m.n.cfg.ReadFromReplicas && m.n.cfg.Replicas > 0 && window > 1 {
		reps, c, err := m.n.replicaSet(tr.Ctx(), de.node, Key(de.pn), de.root)
		total = simnet.Seq(total, c)
		if err == nil && len(reps) > 0 {
			holders := []segment{{addr: de.node, fh: de.fh}}
			for _, rep := range reps {
				if len(holders) == window {
					break
				}
				fh, c2, ok := m.replicaHandle(tr, st, rep, de)
				total = simnet.Seq(total, c2)
				if ok {
					holders = append(holders, segment{addr: rep, fh: fh, rep: true})
				}
			}
			segs = segs[:0]
			per, extra := window/len(holders), window%len(holders)
			off := offset
			for i, h := range holders {
				nch := per
				if i < extra {
					nch++
				}
				if nch == 0 {
					continue
				}
				h.off, h.chunks = off, nch
				segs = append(segs, h)
				off += int64(nch * chunk)
			}
		}
	}

	parts := make([][]byte, len(segs))
	eofs := make([]bool, len(segs))
	costs := make([]simnet.Cost, len(segs))
	for i, sg := range segs {
		d, e, c, err := m.n.nfsT(tr).ReadStream(sg.addr, sg.fh, sg.off, chunk, sg.chunks)
		served := sg.addr
		if err != nil && sg.rep {
			delete(st.repFH, sg.addr)
			var c2 simnet.Cost
			d, e, c2, err = m.n.nfsT(tr).ReadStream(de.node, de.fh, sg.off, chunk, sg.chunks)
			c = simnet.Seq(c, c2)
			served = de.node
		}
		if err != nil {
			return simnet.Seq(total, simnet.Par(costs...), c), err
		}
		parts[i], eofs[i], costs[i] = d, e, c
		m.countRead(served)
		if tr != nil && served != de.node {
			tr.SetServedBy(string(served))
		}
	}
	total = simnet.Seq(total, simnet.Par(costs...))

	// Stitch segments in order, stopping at the first short one: the file
	// ended there, or a holder had less — anything after it would be
	// discontiguous and is refetched by a later window.
	buf := make([]byte, 0, window*chunk)
	eof := false
	for i, p := range parts {
		buf = append(buf, p...)
		if eofs[i] || len(p) < segs[i].chunks*chunk {
			eof = eofs[i]
			break
		}
	}
	st.buf, st.bufOff, st.bufEOF = buf, offset, eof
	return total, nil
}

// replicaHandle resolves (and caches per stream) a replica holder's handle
// for the file's replica-area copy.
func (m *Mount) replicaHandle(tr *obs.Trace, st *stream, rep simnet.Addr, de *ventry) (nfs.Handle, simnet.Cost, bool) {
	if fh, ok := st.repFH[rep]; ok {
		return fh, 0, true
	}
	fh, _, c, err := m.n.remoteLookupPath(tr.Ctx(), rep, RepPath(de.physPath))
	if err != nil {
		return nfs.Handle{}, c, false
	}
	if st.repFH == nil {
		st.repFH = make(map[simnet.Addr]nfs.Handle, 2)
	}
	st.repFH[rep] = fh
	return fh, c, true
}

// --- write-back ---

// writeBuffered absorbs one Write into the handle's coalescing buffer,
// flushing on the byte high-water mark or span-count bound. handled=false
// sends the caller down the write-through path (non-regular files).
func (m *Mount) writeBuffered(tr *obs.Trace, vh VH, offset int64, data []byte) (int, simnet.Cost, bool, error) {
	de, err := m.entry(vh)
	if err != nil || de.kind != localfs.TypeRegular {
		return 0, 0, false, nil
	}
	st := m.streamOf(vh, true)
	st.mu.Lock()
	defer st.mu.Unlock()
	// Absorbing into the client-side buffer costs the interposition
	// constant alone; the network and disk are paid at flush time.
	cost := m.n.cfg.InterposeCost
	if !st.absorb(offset, data) {
		// The write overlaps buffered data: flush first so bytes land in
		// write order, then buffer the new write.
		c, ferr := m.flushLocked(tr, vh, st)
		cost = simnet.Seq(cost, c)
		if ferr != nil {
			return 0, cost, true, ferr
		}
		st.absorb(offset, data)
	}
	m.n.wbCoalesced.Add(1)
	m.invalAttr(de.vpath)
	if st.wbBytes >= m.n.cfg.WriteBackBytes || len(st.spans) > wbMaxSpans {
		c, ferr := m.flushLocked(tr, vh, st)
		cost = simnet.Seq(cost, c)
		if ferr != nil {
			return 0, cost, true, ferr
		}
	}
	return len(data), cost, true, nil
}

// flushLocked ships the buffered spans as one vectored apply through the
// primary (replica fan-out intact) and empties the buffer. Like the NFSv3
// write-back contract, dirty data is dropped on error: the failure surfaces
// to whoever forced the flush — high water, Commit, Close — and is gone.
func (m *Mount) flushLocked(tr *obs.Trace, vh VH, st *stream) (simnet.Cost, error) {
	if len(st.spans) == 0 {
		return 0, nil
	}
	spans := st.spans
	st.spans, st.wbBytes = nil, 0
	sort.Slice(spans, func(i, j int) bool { return spans[i].Offset < spans[j].Offset })
	m.n.wbFlushes.Add(1)
	size := 0
	for _, s := range spans {
		size += len(s.Data)
	}
	var vp string
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		_, _, c, aerr := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSWriteV, Path: de.physPath, Spans: spans})
		if aerr == nil {
			vp = de.vpath
			if de.node == m.n.addr {
				c = simnet.Seq(c, m.n.cfg.LoopbackXfer(size))
			}
		}
		return c, aerr
	})
	if vp != "" {
		m.invalAttr(vp)
	}
	return cost, err
}

// flushVH flushes the handle's write-back buffer if one exists. A no-op
// (zero cost) under write-through or when the handle holds no dirty data.
func (m *Mount) flushVH(tr *obs.Trace, vh VH) (simnet.Cost, error) {
	if m.n.cfg.WriteBackBytes <= 0 {
		return 0, nil
	}
	st := m.streamOf(vh, false)
	if st == nil {
		return 0, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return m.flushLocked(tr, vh, st)
}

// Commit flushes the handle's write-back buffer to the primary, the NFSv3
// COMMIT. Under write-through it costs only the interposition constant.
func (m *Mount) Commit(vh VH) (simnet.Cost, error) {
	o := m.begin(obs.OpcCommit, m.vpathOf(vh))
	cost, err := m.flushVH(o.tr, vh)
	if cost == 0 {
		cost = m.n.cfg.InterposeCost
	}
	o.done(cost, err)
	return cost, err
}

// Close releases a handle with close-to-open semantics: buffered writes
// flush (errors surface here, like COMMIT at close), the readahead window
// is cancelled, and the virtual handle is forgotten. A mount that writes,
// Closes, and is followed by any other mount opening the same file is
// guaranteed to expose the written bytes.
func (m *Mount) Close(vh VH) (simnet.Cost, error) {
	o := m.begin(obs.OpcCommit, m.vpathOf(vh))
	cost, err := m.flushVH(o.tr, vh)
	m.cancelStream(vh)
	if vh != RootVH {
		m.vt.delete(vh)
	}
	if cost == 0 {
		cost = m.n.cfg.InterposeCost
	}
	o.done(cost, err)
	return cost, err
}

// FlushAll flushes every handle's write-back buffer — the quiesce hook the
// chaos harness runs before oracle checks. No-op under write-through.
func (m *Mount) FlushAll() (simnet.Cost, error) {
	if m.n.cfg.WriteBackBytes <= 0 {
		return 0, nil
	}
	m.smu.Lock()
	vhs := make([]VH, 0, len(m.streams))
	for vh := range m.streams {
		vhs = append(vhs, vh)
	}
	m.smu.Unlock()
	var total simnet.Cost
	var firstErr error
	for _, vh := range vhs {
		c, err := m.flushVH(nil, vh)
		total = simnet.Seq(total, c)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}
