package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// CtlService is the administrative service every koshad exposes: path-based
// file operations executed through the node's own mount, so external tools
// (cmd/koshactl) can drive the virtual file system without joining the
// overlay themselves.
const CtlService = "koshactl"

// ctl procedure numbers.
const (
	ctlRead = iota + 1
	ctlWrite
	ctlList
	ctlMkdirAll
	ctlRemoveAll
	ctlStat
	ctlStatfs
	ctlPeers
	ctlStats
	ctlTrace
)

// ctlOnce lazily attaches the ctl handler's mount.
type ctlState struct {
	once  sync.Once
	mount *Mount
}

var ctlMounts sync.Map // *Node -> *ctlState

func (n *Node) ctlMount() *Mount {
	v, _ := ctlMounts.LoadOrStore(n, &ctlState{})
	st := v.(*ctlState)
	st.once.Do(func() { st.mount = n.NewMount() })
	return st.mount
}

// AttachCtl registers the koshactl service on this node.
func (n *Node) AttachCtl() {
	n.net.Register(n.addr, CtlService, n.handleCtl)
}

// ctlProcs is the koshactl administrative service, dispatched through the
// same typed table mechanism as the kosha replication service. Every ctl
// request carries a vpath argument right after the procedure number (""
// for node-level procedures); handlers decode it themselves.
var ctlProcs = serviceTable{
	ctlRead:      (*Node).ctlServeRead,
	ctlWrite:     (*Node).ctlServeWrite,
	ctlList:      (*Node).ctlServeList,
	ctlMkdirAll:  (*Node).ctlServeMkdirAll,
	ctlRemoveAll: (*Node).ctlServeRemoveAll,
	ctlStat:      (*Node).ctlServeStat,
	ctlStatfs:    (*Node).ctlServeStatfs,
	ctlPeers:     (*Node).ctlServePeers,
	ctlStats:     (*Node).ctlServeStats,
	ctlTrace:     (*Node).ctlServeTrace,
}

func (n *Node) handleCtl(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	return n.dispatch(ctlProcs, "koshactl", from, req)
}

// ctlFail encodes the ctl failure convention: ok=false plus a message. The
// RPC itself still succeeds; the client surfaces the message as an error.
func ctlFail(e *wire.Encoder, err error) {
	e.Reset()
	e.PutBool(false)
	e.PutString(err.Error())
}

func (n *Node) ctlServeRead(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	data, cost, err := n.ctlMount().ReadFile(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	e.PutOpaque(data)
	return cost, nil
}

func (n *Node) ctlServeWrite(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	data := d.Opaque()
	if d.Err() != nil {
		return 0, d.Err()
	}
	cost, err := n.ctlMount().WriteFile(vpath, data)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	return cost, nil
}

func (n *Node) ctlServeList(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	m := n.ctlMount()
	vh, attr, cost, err := m.LookupPath(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	if attr.Type != localfs.TypeDir {
		ctlFail(e, fmt.Errorf("koshactl: %s is not a directory", vpath))
		return cost, nil
	}
	ents, c, err := m.Readdir(vh)
	cost = simnet.Seq(cost, c)
	m.forget(vh)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	e.PutUint32(uint32(len(ents)))
	for _, ent := range ents {
		e.PutString(ent.Name)
		e.PutUint32(uint32(ent.Type))
	}
	return cost, nil
}

func (n *Node) ctlServeMkdirAll(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	m := n.ctlMount()
	vh, cost, err := m.MkdirAll(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	m.forget(vh)
	e.PutBool(true)
	return cost, nil
}

func (n *Node) ctlServeRemoveAll(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	cost, err := n.ctlMount().RemoveAllPath(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	return cost, nil
}

func (n *Node) ctlServeStat(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	m := n.ctlMount()
	vh, attr, cost, err := m.LookupPath(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	m.forget(vh)
	e.PutBool(true)
	e.PutUint32(uint32(attr.Type))
	e.PutUint32(attr.Mode)
	e.PutInt64(attr.Size)
	e.PutInt64(attr.Mtime.UnixNano())
	return cost, nil
}

func (n *Node) ctlServePeers(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused by node-level procedures
	if d.Err() != nil {
		return 0, d.Err()
	}
	e.PutBool(true)
	peers := n.overlay.Known()
	e.PutUint32(uint32(len(peers)))
	for _, p := range peers {
		e.PutString(string(p.Addr))
		e.PutString(p.ID.String())
	}
	return 0, nil
}

func (n *Node) ctlServeStatfs(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused by node-level procedures
	if d.Err() != nil {
		return 0, d.Err()
	}
	st, cost, err := n.store.Statfs()
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	e.PutInt64(st.TotalBytes)
	e.PutInt64(st.UsedBytes)
	e.PutInt64(st.Files)
	e.PutString(n.overlay.Info().ID.String())
	e.PutUint32(uint32(len(n.overlay.Leaf())))
	return cost, nil
}

func (n *Node) ctlServeStats(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused by node-level procedures
	if d.Err() != nil {
		return 0, d.Err()
	}
	p := StatsPayload{
		Addr:   string(n.addr),
		NodeID: n.overlay.Info().ID.String(),
		Stats:  n.reg.Snapshot(),
		Events: n.events.Snapshot(32),
	}
	b, err := json.Marshal(p)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

func (n *Node) ctlServeTrace(from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused
	count := int(d.Uint32())
	if d.Err() != nil {
		return 0, d.Err()
	}
	traces := n.tracer.Recent(count)
	if traces == nil {
		traces = []obs.Trace{}
	}
	b, err := json.Marshal(traces)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

// StatsPayload is the JSON document ctlStats returns: one node's metrics
// registry snapshot plus its overlay-health event log.
type StatsPayload struct {
	Addr   string             `json:"addr"`
	NodeID string             `json:"node_id"`
	Stats  obs.Snapshot       `json:"stats"`
	Events obs.EventsSnapshot `json:"events"`
}

// CtlClient drives a remote koshad's ctl service.
type CtlClient struct {
	Net  simnet.Caller
	From simnet.Addr
	To   simnet.Addr
}

func (c *CtlClient) call(proc uint32, vpath string, extra func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	e := wire.NewEncoder(256)
	e.PutUint32(proc)
	e.PutString(vpath)
	if extra != nil {
		extra(e)
	}
	resp, cost, err := c.Net.Call(c.From, c.To, CtlService, e.Bytes())
	if err != nil {
		return nil, cost, err
	}
	d := wire.NewDecoder(resp)
	if ok := d.Bool(); !ok {
		msg := d.String()
		if d.Err() != nil {
			return nil, cost, d.Err()
		}
		return nil, cost, fmt.Errorf("koshactl: %s", msg)
	}
	return d, cost, nil
}

// ReadFile fetches a whole file.
func (c *CtlClient) ReadFile(vpath string) ([]byte, simnet.Cost, error) {
	d, cost, err := c.call(ctlRead, vpath, nil)
	if err != nil {
		return nil, cost, err
	}
	return d.Opaque(), cost, d.Err()
}

// WriteFile stores a whole file, creating ancestors.
func (c *CtlClient) WriteFile(vpath string, data []byte) (simnet.Cost, error) {
	_, cost, err := c.call(ctlWrite, vpath, func(e *wire.Encoder) { e.PutOpaque(data) })
	return cost, err
}

// List returns a directory listing.
func (c *CtlClient) List(vpath string) ([]DirEntry, simnet.Cost, error) {
	d, cost, err := c.call(ctlList, vpath, nil)
	if err != nil {
		return nil, cost, err
	}
	n := d.ArrayLen()
	out := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DirEntry{Name: d.String(), Type: localfs.FileType(d.Uint32())})
	}
	return out, cost, d.Err()
}

// MkdirAll creates a directory path.
func (c *CtlClient) MkdirAll(vpath string) (simnet.Cost, error) {
	_, cost, err := c.call(ctlMkdirAll, vpath, nil)
	return cost, err
}

// RemoveAll removes a subtree.
func (c *CtlClient) RemoveAll(vpath string) (simnet.Cost, error) {
	_, cost, err := c.call(ctlRemoveAll, vpath, nil)
	return cost, err
}

// StatResult carries ctlStat's reply.
type StatResult struct {
	Type localfs.FileType
	Mode uint32
	Size int64
}

// Stat fetches entry attributes.
func (c *CtlClient) Stat(vpath string) (StatResult, simnet.Cost, error) {
	d, cost, err := c.call(ctlStat, vpath, nil)
	if err != nil {
		return StatResult{}, cost, err
	}
	var st StatResult
	st.Type = localfs.FileType(d.Uint32())
	st.Mode = d.Uint32()
	st.Size = d.Int64()
	return st, cost, d.Err()
}

// NodeStatus carries ctlStatfs's reply.
type NodeStatus struct {
	TotalBytes int64
	UsedBytes  int64
	Files      int64
	NodeID     string
	LeafSize   int
}

// Peer identifies one overlay member as seen by a node.
type Peer struct {
	Addr   simnet.Addr
	NodeID string
}

// Peers lists the overlay members the remote node knows about, used by
// koshactl to crawl the cluster.
func (c *CtlClient) Peers() ([]Peer, simnet.Cost, error) {
	d, cost, err := c.call(ctlPeers, "", nil)
	if err != nil {
		return nil, cost, err
	}
	n := d.ArrayLen()
	out := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Peer{Addr: simnet.Addr(d.String()), NodeID: d.String()})
	}
	return out, cost, d.Err()
}

// Stats fetches the remote node's metrics registry and event-log snapshot.
func (c *CtlClient) Stats() (StatsPayload, simnet.Cost, error) {
	d, cost, err := c.call(ctlStats, "", nil)
	if err != nil {
		return StatsPayload{}, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return StatsPayload{}, cost, d.Err()
	}
	var p StatsPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return StatsPayload{}, cost, err
	}
	return p, cost, nil
}

// TraceDump fetches up to count recent operation traces from the remote
// node's ring buffer, newest first (count <= 0 means all retained).
func (c *CtlClient) TraceDump(count int) ([]obs.Trace, simnet.Cost, error) {
	if count < 0 {
		count = 0
	}
	d, cost, err := c.call(ctlTrace, "", func(e *wire.Encoder) { e.PutUint32(uint32(count)) })
	if err != nil {
		return nil, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	var traces []obs.Trace
	if err := json.Unmarshal(raw, &traces); err != nil {
		return nil, cost, err
	}
	return traces, cost, nil
}

// Status reports the remote node's store occupancy and overlay identity.
func (c *CtlClient) Status() (NodeStatus, simnet.Cost, error) {
	d, cost, err := c.call(ctlStatfs, "", nil)
	if err != nil {
		return NodeStatus{}, cost, err
	}
	var st NodeStatus
	st.TotalBytes = d.Int64()
	st.UsedBytes = d.Int64()
	st.Files = d.Int64()
	st.NodeID = d.String()
	st.LeafSize = int(d.Uint32())
	return st, cost, d.Err()
}
