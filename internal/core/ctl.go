package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// CtlService is the administrative service every koshad exposes: path-based
// file operations executed through the node's own mount, so external tools
// (cmd/koshactl) can drive the virtual file system without joining the
// overlay themselves.
const CtlService = "koshactl"

// ctl procedure numbers.
const (
	ctlRead = iota + 1
	ctlWrite
	ctlList
	ctlMkdirAll
	ctlRemoveAll
	ctlStat
	ctlStatfs
	ctlPeers
	ctlStats
	ctlTrace
	ctlTraceFrag
	ctlSamples
	ctlSlow
)

// ctlOnce lazily attaches the ctl handler's mount.
type ctlState struct {
	once  sync.Once
	mount *Mount
}

var ctlMounts sync.Map // *Node -> *ctlState

func (n *Node) ctlMount() *Mount {
	v, _ := ctlMounts.LoadOrStore(n, &ctlState{})
	st := v.(*ctlState)
	st.once.Do(func() { st.mount = n.NewMount() })
	return st.mount
}

// AttachCtl registers the koshactl service on this node.
func (n *Node) AttachCtl() {
	n.net.Register(n.addr, CtlService, n.handleCtl)
}

// ctlProcs is the koshactl administrative service, dispatched through the
// same typed table mechanism as the kosha replication service. Every ctl
// request carries a vpath argument right after the procedure number (""
// for node-level procedures); handlers decode it themselves.
var ctlProcs = serviceTable{
	ctlRead:      (*Node).ctlServeRead,
	ctlWrite:     (*Node).ctlServeWrite,
	ctlList:      (*Node).ctlServeList,
	ctlMkdirAll:  (*Node).ctlServeMkdirAll,
	ctlRemoveAll: (*Node).ctlServeRemoveAll,
	ctlStat:      (*Node).ctlServeStat,
	ctlStatfs:    (*Node).ctlServeStatfs,
	ctlPeers:     (*Node).ctlServePeers,
	ctlStats:     (*Node).ctlServeStats,
	ctlTrace:     (*Node).ctlServeTrace,
	ctlTraceFrag: (*Node).ctlServeTraceFrag,
	ctlSamples:   (*Node).ctlServeSamples,
	ctlSlow:      (*Node).ctlServeSlow,
}

func (n *Node) handleCtl(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	return n.dispatch(ctlProcs, "koshactl", obs.TraceContext{}, from, req)
}

// ctlFail encodes the ctl failure convention: ok=false plus a message. The
// RPC itself still succeeds; the client surfaces the message as an error.
func ctlFail(e *wire.Encoder, err error) {
	e.Reset()
	e.PutBool(false)
	e.PutString(err.Error())
}

func (n *Node) ctlServeRead(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	data, cost, err := n.ctlMount().ReadFile(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	e.PutOpaque(data)
	return cost, nil
}

func (n *Node) ctlServeWrite(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	data := d.Opaque()
	if d.Err() != nil {
		return 0, d.Err()
	}
	cost, err := n.ctlMount().WriteFile(vpath, data)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	return cost, nil
}

func (n *Node) ctlServeList(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	m := n.ctlMount()
	vh, attr, cost, err := m.LookupPath(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	if attr.Type != localfs.TypeDir {
		ctlFail(e, fmt.Errorf("koshactl: %s is not a directory", vpath))
		return cost, nil
	}
	ents, c, err := m.Readdir(vh)
	cost = simnet.Seq(cost, c)
	m.forget(vh)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	e.PutUint32(uint32(len(ents)))
	for _, ent := range ents {
		e.PutString(ent.Name)
		e.PutUint32(uint32(ent.Type))
	}
	return cost, nil
}

func (n *Node) ctlServeMkdirAll(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	m := n.ctlMount()
	vh, cost, err := m.MkdirAll(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	m.forget(vh)
	e.PutBool(true)
	return cost, nil
}

func (n *Node) ctlServeRemoveAll(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	cost, err := n.ctlMount().RemoveAllPath(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	return cost, nil
}

func (n *Node) ctlServeStat(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	vpath := d.String()
	if d.Err() != nil {
		return 0, d.Err()
	}
	m := n.ctlMount()
	vh, attr, cost, err := m.LookupPath(vpath)
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	m.forget(vh)
	e.PutBool(true)
	e.PutUint32(uint32(attr.Type))
	e.PutUint32(attr.Mode)
	e.PutInt64(attr.Size)
	e.PutInt64(attr.Mtime.UnixNano())
	return cost, nil
}

func (n *Node) ctlServePeers(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused by node-level procedures
	if d.Err() != nil {
		return 0, d.Err()
	}
	e.PutBool(true)
	peers := n.overlay.Known()
	e.PutUint32(uint32(len(peers)))
	for _, p := range peers {
		e.PutString(string(p.Addr))
		e.PutString(p.ID.String())
	}
	return 0, nil
}

func (n *Node) ctlServeStatfs(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused by node-level procedures
	if d.Err() != nil {
		return 0, d.Err()
	}
	st, cost, err := n.store.Statfs()
	if err != nil {
		ctlFail(e, err)
		return cost, nil
	}
	e.PutBool(true)
	e.PutInt64(st.TotalBytes)
	e.PutInt64(st.UsedBytes)
	e.PutInt64(st.Files)
	e.PutString(n.overlay.Info().ID.String())
	e.PutUint32(uint32(len(n.overlay.Leaf())))
	return cost, nil
}

func (n *Node) ctlServeStats(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused by node-level procedures
	if d.Err() != nil {
		return 0, d.Err()
	}
	p := StatsPayload{
		Addr:   string(n.addr),
		NodeID: n.overlay.Info().ID.String(),
		Stats:  n.reg.Snapshot(),
		Events: n.events.Snapshot(32),
	}
	b, err := json.Marshal(p)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

func (n *Node) ctlServeTrace(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused
	count := int(d.Uint32())
	if d.Err() != nil {
		return 0, d.Err()
	}
	traces := n.tracer.Recent(count)
	if traces == nil {
		traces = []obs.Trace{}
	}
	b, err := json.Marshal(traces)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

// ctlServeTraceFrag returns this node's fragment of one distributed trace:
// the origin-side Trace if the op started here, plus every server span this
// node recorded for the 128-bit trace id. koshactl collects fragments from
// all live nodes and reassembles the causal tree.
func (n *Node) ctlServeTraceFrag(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused
	hi := d.Uint64()
	lo := d.Uint64()
	if d.Err() != nil {
		return 0, d.Err()
	}
	var p TraceFragPayload
	p.Node = string(n.addr)
	if tr, ok := n.tracer.FindTrace(hi, lo); ok {
		p.Origin = &tr
	}
	p.Spans = n.tracer.SpansFor(hi, lo)
	if p.Spans == nil {
		p.Spans = []obs.SpanRecord{}
	}
	b, err := json.Marshal(p)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

// ctlServeSamples returns the node's retained time-series samples, oldest
// first; empty until the node's sampler has been started (koshad's
// -sampleevery flag or koshabench's -sample).
func (n *Node) ctlServeSamples(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused
	count := int(d.Uint32())
	if d.Err() != nil {
		return 0, d.Err()
	}
	samples := n.sampler.Recent(count)
	if samples == nil {
		samples = []obs.Sample{}
	}
	b, err := json.Marshal(samples)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

// ctlServeSlow returns the slow-op flight recorder: traces whose total
// exceeded Config.SlowOpNS, kept in a ring the normal eviction never
// touches.
func (n *Node) ctlServeSlow(ctx obs.TraceContext, from simnet.Addr, d *wire.Decoder, e *wire.Encoder) (simnet.Cost, error) {
	_ = d.String() // vpath, unused
	count := int(d.Uint32())
	if d.Err() != nil {
		return 0, d.Err()
	}
	traces := n.tracer.Slow(count)
	if traces == nil {
		traces = []obs.Trace{}
	}
	b, err := json.Marshal(traces)
	if err != nil {
		ctlFail(e, err)
		return 0, nil
	}
	e.PutBool(true)
	e.PutOpaque(b)
	return 0, nil
}

// TraceFragPayload is one node's contribution to a distributed trace: the
// originating Trace when the op began on that node, plus all server spans
// the node recorded under the trace id.
type TraceFragPayload struct {
	Node   string           `json:"node"`
	Origin *obs.Trace       `json:"origin,omitempty"`
	Spans  []obs.SpanRecord `json:"spans"`
}

// StatsPayload is the JSON document ctlStats returns: one node's metrics
// registry snapshot plus its overlay-health event log.
type StatsPayload struct {
	Addr   string             `json:"addr"`
	NodeID string             `json:"node_id"`
	Stats  obs.Snapshot       `json:"stats"`
	Events obs.EventsSnapshot `json:"events"`
}

// CtlClient drives a remote koshad's ctl service.
type CtlClient struct {
	Net  simnet.Caller
	From simnet.Addr
	To   simnet.Addr
}

func (c *CtlClient) call(proc uint32, vpath string, extra func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	e := wire.NewEncoder(256)
	e.PutUint32(proc)
	e.PutString(vpath)
	if extra != nil {
		extra(e)
	}
	resp, cost, err := c.Net.Call(c.From, c.To, CtlService, e.Bytes())
	if err != nil {
		return nil, cost, err
	}
	d := wire.NewDecoder(resp)
	if ok := d.Bool(); !ok {
		msg := d.String()
		if d.Err() != nil {
			return nil, cost, d.Err()
		}
		return nil, cost, fmt.Errorf("koshactl: %s", msg)
	}
	return d, cost, nil
}

// ReadFile fetches a whole file.
func (c *CtlClient) ReadFile(vpath string) ([]byte, simnet.Cost, error) {
	d, cost, err := c.call(ctlRead, vpath, nil)
	if err != nil {
		return nil, cost, err
	}
	return d.Opaque(), cost, d.Err()
}

// WriteFile stores a whole file, creating ancestors.
func (c *CtlClient) WriteFile(vpath string, data []byte) (simnet.Cost, error) {
	_, cost, err := c.call(ctlWrite, vpath, func(e *wire.Encoder) { e.PutOpaque(data) })
	return cost, err
}

// List returns a directory listing.
func (c *CtlClient) List(vpath string) ([]DirEntry, simnet.Cost, error) {
	d, cost, err := c.call(ctlList, vpath, nil)
	if err != nil {
		return nil, cost, err
	}
	n := d.ArrayLen()
	out := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DirEntry{Name: d.String(), Type: localfs.FileType(d.Uint32())})
	}
	return out, cost, d.Err()
}

// MkdirAll creates a directory path.
func (c *CtlClient) MkdirAll(vpath string) (simnet.Cost, error) {
	_, cost, err := c.call(ctlMkdirAll, vpath, nil)
	return cost, err
}

// RemoveAll removes a subtree.
func (c *CtlClient) RemoveAll(vpath string) (simnet.Cost, error) {
	_, cost, err := c.call(ctlRemoveAll, vpath, nil)
	return cost, err
}

// StatResult carries ctlStat's reply.
type StatResult struct {
	Type localfs.FileType
	Mode uint32
	Size int64
}

// Stat fetches entry attributes.
func (c *CtlClient) Stat(vpath string) (StatResult, simnet.Cost, error) {
	d, cost, err := c.call(ctlStat, vpath, nil)
	if err != nil {
		return StatResult{}, cost, err
	}
	var st StatResult
	st.Type = localfs.FileType(d.Uint32())
	st.Mode = d.Uint32()
	st.Size = d.Int64()
	return st, cost, d.Err()
}

// NodeStatus carries ctlStatfs's reply.
type NodeStatus struct {
	TotalBytes int64
	UsedBytes  int64
	Files      int64
	NodeID     string
	LeafSize   int
}

// Peer identifies one overlay member as seen by a node.
type Peer struct {
	Addr   simnet.Addr
	NodeID string
}

// Peers lists the overlay members the remote node knows about, used by
// koshactl to crawl the cluster.
func (c *CtlClient) Peers() ([]Peer, simnet.Cost, error) {
	d, cost, err := c.call(ctlPeers, "", nil)
	if err != nil {
		return nil, cost, err
	}
	n := d.ArrayLen()
	out := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Peer{Addr: simnet.Addr(d.String()), NodeID: d.String()})
	}
	return out, cost, d.Err()
}

// Stats fetches the remote node's metrics registry and event-log snapshot.
func (c *CtlClient) Stats() (StatsPayload, simnet.Cost, error) {
	d, cost, err := c.call(ctlStats, "", nil)
	if err != nil {
		return StatsPayload{}, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return StatsPayload{}, cost, d.Err()
	}
	var p StatsPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return StatsPayload{}, cost, err
	}
	return p, cost, nil
}

// TraceDump fetches up to count recent operation traces from the remote
// node's ring buffer, newest first (count <= 0 means all retained).
func (c *CtlClient) TraceDump(count int) ([]obs.Trace, simnet.Cost, error) {
	if count < 0 {
		count = 0
	}
	d, cost, err := c.call(ctlTrace, "", func(e *wire.Encoder) { e.PutUint32(uint32(count)) })
	if err != nil {
		return nil, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	var traces []obs.Trace
	if err := json.Unmarshal(raw, &traces); err != nil {
		return nil, cost, err
	}
	return traces, cost, nil
}

// TraceFrag fetches one node's fragment of the distributed trace (hi, lo).
func (c *CtlClient) TraceFrag(hi, lo uint64) (TraceFragPayload, simnet.Cost, error) {
	d, cost, err := c.call(ctlTraceFrag, "", func(e *wire.Encoder) {
		e.PutUint64(hi)
		e.PutUint64(lo)
	})
	if err != nil {
		return TraceFragPayload{}, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return TraceFragPayload{}, cost, d.Err()
	}
	var p TraceFragPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return TraceFragPayload{}, cost, err
	}
	return p, cost, nil
}

// Samples fetches up to count retained time-series samples, oldest first
// (count <= 0 means all retained).
func (c *CtlClient) Samples(count int) ([]obs.Sample, simnet.Cost, error) {
	if count < 0 {
		count = 0
	}
	d, cost, err := c.call(ctlSamples, "", func(e *wire.Encoder) { e.PutUint32(uint32(count)) })
	if err != nil {
		return nil, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	var samples []obs.Sample
	if err := json.Unmarshal(raw, &samples); err != nil {
		return nil, cost, err
	}
	return samples, cost, nil
}

// SlowDump fetches up to count flight-recorded slow traces, newest first
// (count <= 0 means all retained).
func (c *CtlClient) SlowDump(count int) ([]obs.Trace, simnet.Cost, error) {
	if count < 0 {
		count = 0
	}
	d, cost, err := c.call(ctlSlow, "", func(e *wire.Encoder) { e.PutUint32(uint32(count)) })
	if err != nil {
		return nil, cost, err
	}
	raw := d.Opaque()
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	var traces []obs.Trace
	if err := json.Unmarshal(raw, &traces); err != nil {
		return nil, cost, err
	}
	return traces, cost, nil
}

// Status reports the remote node's store occupancy and overlay identity.
func (c *CtlClient) Status() (NodeStatus, simnet.Cost, error) {
	d, cost, err := c.call(ctlStatfs, "", nil)
	if err != nil {
		return NodeStatus{}, cost, err
	}
	var st NodeStatus
	st.TotalBytes = d.Int64()
	st.UsedBytes = d.Int64()
	st.Files = d.Int64()
	st.NodeID = d.String()
	st.LeafSize = int(d.Uint32())
	return st, cost, d.Err()
}
