package core

import (
	"fmt"
	"path"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/simnet"
)

// applyFSOp executes a path-based mutation on the local store. lenient mode
// (replica application) auto-creates missing ancestors and tolerates
// re-application, keeping mirrors idempotent.
func (n *Node) applyFSOp(op FSOp, lenient bool) (localfs.Attr, simnet.Cost, error) {
	// Path resolution against a warm name cache is much cheaper than a
	// data-bearing disk op; charge a small fixed cost rather than a full
	// disk operation so path-based mutations stay comparable to the
	// handle-based NFS ones they stand in for.
	resolveCost := simnet.Cost(50_000)
	parentOf := func(p string) (localfs.Attr, error) {
		dir := path.Dir(p)
		if lenient {
			return n.store.MkdirAll(dir)
		}
		return n.store.LookupPath(dir)
	}
	switch op.Kind {
	case FSMkdirAll:
		attr, err := n.store.MkdirAll(op.Path)
		return attr, resolveCost, err

	case FSMkdir:
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Mkdir(pattr.Ino, path.Base(op.Path), op.Mode)
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrExist {
			attr, err = n.store.LookupPath(op.Path)
		}
		return attr, simnet.Seq(resolveCost, cost), err

	case FSCreate:
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		excl := op.Excl && !lenient
		attr, cost, err := n.store.Create(pattr.Ino, path.Base(op.Path), op.Mode, excl)
		return attr, simnet.Seq(resolveCost, cost), err

	case FSWrite:
		attr, err := n.store.LookupPath(op.Path)
		if err != nil && lenient {
			if werr := n.store.WriteFile(op.Path, nil); werr == nil {
				attr, err = n.store.LookupPath(op.Path)
			}
		}
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		_, cost, err := n.store.Write(attr.Ino, op.Offset, op.Data)
		if err != nil {
			return localfs.Attr{}, simnet.Seq(resolveCost, cost), err
		}
		attr, _ = n.store.LookupPath(op.Path)
		return attr, simnet.Seq(resolveCost, cost), nil

	case FSWriteV:
		attr, err := n.store.LookupPath(op.Path)
		if err != nil && lenient {
			if werr := n.store.WriteFile(op.Path, nil); werr == nil {
				attr, err = n.store.LookupPath(op.Path)
			}
		}
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		// The spans land back to back on the store, like the WRITEBATCH
		// procedure they mirror: disk costs accumulate, the round trip was
		// paid once.
		total := resolveCost
		for _, sp := range op.Spans {
			_, cost, werr := n.store.Write(attr.Ino, sp.Offset, sp.Data)
			total = simnet.Seq(total, cost)
			if werr != nil {
				return localfs.Attr{}, total, werr
			}
		}
		attr, _ = n.store.LookupPath(op.Path)
		return attr, total, nil

	case FSChunkWrite:
		// A manifest span: assemble the bytes first — inline chunks from the
		// op, referenced chunks from the local block index — and only then
		// touch the file. Assembly failure (a reference this node promised
		// but no longer holds) must leave the file untouched: the sender
		// answers the error by re-shipping the span verbatim.
		data, aerr := n.rep.AssembleChunks(op)
		if aerr != nil {
			return localfs.Attr{}, resolveCost, aerr
		}
		attr, err := n.store.LookupPath(op.Path)
		if err != nil && lenient {
			if werr := n.store.WriteFile(op.Path, nil); werr == nil {
				attr, err = n.store.LookupPath(op.Path)
			}
		}
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		_, cost, err := n.store.Write(attr.Ino, op.Offset, data)
		if err != nil {
			return localfs.Attr{}, simnet.Seq(resolveCost, cost), err
		}
		// Warm-on-receive: the span's chunks just landed at known offsets, so
		// index them immediately — the next push negotiating against this
		// node gets HAVE hits without waiting for a digest recompute.
		n.rep.WarmChunks(op.Path, op)
		attr, _ = n.store.LookupPath(op.Path)
		return attr, simnet.Seq(resolveCost, cost), nil

	case FSRelink:
		// Atomic ownership flip (rebalance migration): whatever occupies
		// Path — the migrated directory itself or a stale special link — is
		// replaced by a link to Target in one apply, so the name never
		// resolves to nothing in between.
		if err := n.store.RemoveAll(op.Path); err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Symlink(pattr.Ino, path.Base(op.Path), op.Target)
		return attr, simnet.Seq(resolveCost, cost), err

	case FSWriteFile:
		if err := n.store.WriteFile(op.Path, op.Data); err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, err := n.store.LookupPath(op.Path)
		return attr, simnet.Seq(resolveCost, n.cfg.Disk.OpCost(len(op.Data))), err

	case FSSetattr:
		attr, err := n.store.LookupPath(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Setattr(attr.Ino, op.SetAttr)
		return attr, simnet.Seq(resolveCost, cost), err

	case FSRemove:
		pattr, err := n.store.LookupPath(path.Dir(op.Path))
		if err != nil {
			if lenient {
				return localfs.Attr{}, resolveCost, nil
			}
			return localfs.Attr{}, resolveCost, err
		}
		cost, err := n.store.Remove(pattr.Ino, path.Base(op.Path))
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrNoEnt {
			err = nil
		}
		if err == nil && op.Prune {
			n.rep.PruneUp(path.Dir(op.Path))
		}
		return localfs.Attr{}, simnet.Seq(resolveCost, cost), err

	case FSRmdir:
		pattr, err := n.store.LookupPath(path.Dir(op.Path))
		if err != nil {
			if lenient {
				return localfs.Attr{}, resolveCost, nil
			}
			return localfs.Attr{}, resolveCost, err
		}
		cost, err := n.store.Rmdir(pattr.Ino, path.Base(op.Path))
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrNoEnt {
			err = nil
		}
		if err == nil && op.Prune {
			n.rep.PruneUp(path.Dir(op.Path))
		}
		return localfs.Attr{}, simnet.Seq(resolveCost, cost), err

	case FSRemoveAll:
		err := n.store.RemoveAll(op.Path)
		if err == nil && op.Prune {
			n.rep.PruneUp(path.Dir(op.Path))
		}
		return localfs.Attr{}, resolveCost, err

	case FSRename:
		spattr, err := n.store.LookupPath(path.Dir(op.Path))
		if err != nil {
			if lenient {
				return localfs.Attr{}, resolveCost, nil
			}
			return localfs.Attr{}, resolveCost, err
		}
		dpattr, err := parentOf(op.Path2)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		cost, err := n.store.Rename(spattr.Ino, path.Base(op.Path), dpattr.Ino, path.Base(op.Path2))
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrNoEnt {
			err = nil
		}
		return localfs.Attr{}, simnet.Seq(resolveCost, cost), err

	case FSSymlink:
		pattr, err := parentOf(op.Path)
		if err != nil {
			return localfs.Attr{}, resolveCost, err
		}
		attr, cost, err := n.store.Symlink(pattr.Ino, path.Base(op.Path), op.Target)
		if lenient && err != nil && nfs.ToStatus(err) == nfs.ErrExist {
			// Replace: mirrors converge on the latest target.
			if _, rerr := n.store.Remove(pattr.Ino, path.Base(op.Path)); rerr == nil {
				attr, cost, err = n.store.Symlink(pattr.Ino, path.Base(op.Path), op.Target)
			}
		}
		return attr, simnet.Seq(resolveCost, cost), err

	default:
		return localfs.Attr{}, 0, fmt.Errorf("kosha: unknown FS op %v", op.Kind)
	}
}
