package core

import (
	"bytes"
	"testing"

	"repro/internal/nfs"
)

func counter(n *Node, name string) uint64 {
	return n.Obs().Snapshot().Counters[name]
}

// TestWriteBackCloseToOpen exercises the close-to-open contract under
// write-back: small sequential writes coalesce client-side, Close flushes
// them through the primary (replica fan-out intact), and a second mount —
// on a different node — opening the file afterwards reads the fresh bytes.
func TestWriteBackCloseToOpen(t *testing.T) {
	_, nodes := testCluster(t, 4, 81, Config{Replicas: 1, WriteBackBytes: 1 << 20})
	m1 := nodes[0].NewMount()
	if _, _, err := m1.MkdirAll("/cto"); err != nil {
		t.Fatal(err)
	}
	dvh, _, _, err := m1.LookupPath("/cto")
	if err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m1.Create(dvh, "f.bin", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}

	const piece = 4 << 10
	payload := make([]byte, 8*piece)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	flushesBefore := counter(nodes[0], "io.writeback.flushes")
	for off := 0; off < len(payload); off += piece {
		n, _, err := m1.Write(fvh, int64(off), payload[off:off+piece])
		if err != nil || n != piece {
			t.Fatalf("write at %d: n=%d err=%v", off, n, err)
		}
	}
	if got := counter(nodes[0], "io.writeback.coalesced"); got < 8 {
		t.Fatalf("io.writeback.coalesced = %d, want >= 8", got)
	}
	if got := counter(nodes[0], "io.writeback.flushes"); got != flushesBefore {
		t.Fatalf("writes below the high-water mark flushed early: %d -> %d", flushesBefore, got)
	}
	if _, err := m1.Close(fvh); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := counter(nodes[0], "io.writeback.flushes"); got != flushesBefore+1 {
		t.Fatalf("close performed %d flushes, want exactly 1", got-flushesBefore)
	}

	// Close-to-open: a different client on a different node sees the bytes.
	m2 := nodes[1].NewMount()
	data, _, err := m2.ReadFile("/cto/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatalf("second mount read %d bytes, mismatch with %d written", len(data), len(payload))
	}
}

// TestWriteBackHighWaterFlush verifies the byte high-water mark forces a
// flush mid-stream rather than growing the buffer without bound.
func TestWriteBackHighWaterFlush(t *testing.T) {
	_, nodes := testCluster(t, 3, 82, Config{Replicas: 1, WriteBackBytes: 16 << 10})
	m := nodes[0].NewMount()
	if _, _, err := m.MkdirAll("/hw"); err != nil {
		t.Fatal(err)
	}
	dvh, _, _, err := m.LookupPath("/hw")
	if err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.Create(dvh, "f", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	before := counter(nodes[0], "io.writeback.flushes")
	chunk := make([]byte, 4<<10)
	for off := 0; off < 64<<10; off += len(chunk) {
		if _, _, err := m.Write(fvh, int64(off), chunk); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	if got := counter(nodes[0], "io.writeback.flushes"); got < before+4 {
		t.Fatalf("64KiB through a 16KiB high-water mark flushed %d times, want >= 4", got-before)
	}
	if _, err := m.Close(fvh); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBackFlushErrorSurfacesAtClose pins the NFSv3 COMMIT-like error
// contract: a buffered write is accepted locally, and when the deferred
// flush fails (the primary's partition is full) the error surfaces at
// Close, not silently nowhere.
func TestWriteBackFlushErrorSurfacesAtClose(t *testing.T) {
	_, nodes := testCluster(t, 3, 83, Config{Replicas: 1, WriteBackBytes: 1 << 20, Capacity: 32 << 10})
	m := nodes[0].NewMount()
	if _, _, err := m.MkdirAll("/full"); err != nil {
		t.Fatal(err)
	}
	dvh, _, _, err := m.LookupPath("/full")
	if err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.Create(dvh, "big", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	// 64KiB buffered against a 32KiB partition: accepted client-side.
	big := make([]byte, 64<<10)
	if n, _, err := m.Write(fvh, 0, big); err != nil || n != len(big) {
		t.Fatalf("buffered write: n=%d err=%v", n, err)
	}
	_, err = m.Close(fvh)
	if err == nil {
		t.Fatal("close succeeded; want the deferred flush's ENOSPC to surface")
	}
	if !nfs.IsStatus(err, nfs.ErrNoSpc) {
		t.Fatalf("close error = %v, want NFS3ERR_NOSPC", err)
	}
}

// TestReadaheadSequentialHitsAndSeekCancel drives a sequential scan through
// the readahead window — every read after the first window fetch is a
// client-side hit — then seeks, which must cancel the window and count the
// prefetched remainder as wasted.
func TestReadaheadSequentialHitsAndSeekCancel(t *testing.T) {
	_, nodes := testCluster(t, 4, 84, Config{Replicas: 1, ReadaheadChunks: 4, StreamChunk: 4 << 10})
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7 % 256)
	}
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/ra/seq.bin", payload); err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/ra/seq.bin")
	if err != nil {
		t.Fatal(err)
	}

	const piece = 4 << 10
	var got []byte
	for off := 0; off < len(payload); off += piece {
		d, _, _, err := m.Read(fvh, int64(off), piece)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		got = append(got, d...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("sequential scan through readahead returned wrong bytes (%d vs %d)", len(got), len(payload))
	}
	// A 4-chunk window over a 16-chunk file: 3 of every 4 reads hit.
	if hits := counter(nodes[0], "io.readahead.hits"); hits < 8 {
		t.Fatalf("io.readahead.hits = %d, want >= 8", hits)
	}
	if wasted := counter(nodes[0], "io.readahead.wasted"); wasted != 0 {
		t.Fatalf("io.readahead.wasted = %d after a pure sequential scan, want 0", wasted)
	}

	// Restart the scan: the first read back at 0 is a seek (plain READ, no
	// window), the second at 4KiB matches the cursor and refills a window.
	// Then seek away mid-window: the prefetched remainder must be discarded
	// and counted as wasted.
	d, _, _, err := m.Read(fvh, 0, piece)
	if err != nil || !bytes.Equal(d, payload[:piece]) {
		t.Fatalf("restart read: %v", err)
	}
	if d, _, _, err = m.Read(fvh, piece, piece); err != nil || !bytes.Equal(d, payload[piece:2*piece]) {
		t.Fatalf("refill read: %v", err)
	}
	if d, _, _, err = m.Read(fvh, 40<<10, piece); err != nil || !bytes.Equal(d, payload[40<<10:40<<10+piece]) {
		t.Fatalf("post-seek read: %v", err)
	}
	if wasted := counter(nodes[0], "io.readahead.wasted"); wasted == 0 {
		t.Fatal("seek mid-window did not count the discarded prefetch as wasted")
	}
}

// TestReadaheadWithReplicaFanout checks the window fans out across replica
// holders: a sequential scan with ReadFromReplicas spreads over more than
// one node and still returns the right bytes.
func TestReadaheadWithReplicaFanout(t *testing.T) {
	_, nodes := testCluster(t, 6, 85, Config{
		Replicas: 2, ReadFromReplicas: true, ReadaheadChunks: 4, StreamChunk: 4 << 10,
	})
	payload := make([]byte, 128<<10)
	for i := range payload {
		payload[i] = byte(i * 13 % 256)
	}
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/fan/big.bin", payload); err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/fan/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	const piece = 4 << 10
	var got []byte
	for off := 0; off < len(payload); off += piece {
		d, _, _, err := m.Read(fvh, int64(off), piece)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		got = append(got, d...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fanned-out sequential scan returned wrong bytes")
	}
	if spread := m.ReadSpread(); len(spread) < 2 {
		t.Fatalf("window segments served by %d node(s) (%v), want fan-out across >= 2", len(spread), spread)
	}
}
