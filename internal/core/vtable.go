package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// vtShards is the shard count of the virtual-handle table. Shards are
// selected by VH & (vtShards-1), so the count must be a power of two.
const vtShards = 16

// vtShard is one shard of the table: an RWMutex plus its slice of rows.
// Lookups — by far the hottest path, every Mount operation starts with one —
// take only the shard's read lock.
type vtShard struct {
	mu sync.RWMutex
	m  map[VH]*ventry
}

// vtable is the sharded virtual-handle table (Section 4.1.2): virtual handle
// → full path, storage node, and real handle. Handles are allocated from an
// atomic counter, so consecutive handles land on consecutive shards and
// operations on different files contend only on handle-space collisions, not
// on one global mutex.
//
// Rows are immutable once published: rebinding a handle after failover
// installs a fresh *ventry (set), never mutates the old one, so a *ventry
// fetched under the read lock stays safe to use after the lock is dropped.
type vtable struct {
	next   atomic.Uint64
	shards [vtShards]vtShard
}

// init readies the shards and installs the permanent root row.
func (t *vtable) init(root *ventry) {
	for i := range t.shards {
		t.shards[i].m = make(map[VH]*ventry)
	}
	t.next.Store(uint64(RootVH) + 1)
	t.set(RootVH, root)
}

func (t *vtable) shard(vh VH) *vtShard { return &t.shards[uint64(vh)&(vtShards-1)] }

// get returns the row behind a handle.
func (t *vtable) get(vh VH) (*ventry, error) {
	s := t.shard(vh)
	s.mu.RLock()
	de, ok := s.m[vh]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, vh)
	}
	return de, nil
}

// insert allocates a fresh handle for a row.
func (t *vtable) insert(de *ventry) VH {
	vh := VH(t.next.Add(1) - 1)
	t.set(vh, de)
	return vh
}

// set publishes (or rebinds) the row behind a handle.
func (t *vtable) set(vh VH, de *ventry) {
	s := t.shard(vh)
	s.mu.Lock()
	s.m[vh] = de
	s.mu.Unlock()
}

// delete drops a handle.
func (t *vtable) delete(vh VH) {
	s := t.shard(vh)
	s.mu.Lock()
	delete(s.m, vh)
	s.mu.Unlock()
}
