package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/localfs"
	"repro/internal/nfs"
)

// TestCachedMetadataHitsCostInterposeOnly verifies the acceptance criterion
// that a Getattr or Lookup served from the client caches is charged exactly
// the interposition constant — no link or disk cost — and issues no RPC.
func TestCachedMetadataHitsCostInterposeOnly(t *testing.T) {
	_, nodes := testCluster(t, 4, 9001, Config{})
	n := nodes[0]
	m := n.NewMount()
	if _, err := m.WriteFile("/home/notes.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	dirVH, _, _, err := m.LookupPath("/home")
	if err != nil {
		t.Fatal(err)
	}

	// First lookup resolves over the network and warms both caches.
	vh, attr, _, err := m.Lookup(dirVH, "notes.txt")
	if err != nil || attr.Size != 5 {
		t.Fatalf("lookup: %+v err=%v", attr, err)
	}

	n.ResetNFSStats()
	attr2, cost, err := m.Getattr(vh)
	if err != nil || attr2 != attr {
		t.Fatalf("cached getattr: %+v err=%v", attr2, err)
	}
	if cost != n.Config().InterposeCost {
		t.Fatalf("cached getattr cost %v, want exactly I=%v", cost, n.Config().InterposeCost)
	}
	vh2, attr3, cost, err := m.Lookup(dirVH, "notes.txt")
	if err != nil || attr3 != attr {
		t.Fatalf("cached lookup: %+v err=%v", attr3, err)
	}
	if cost != n.Config().InterposeCost {
		t.Fatalf("cached lookup cost %v, want exactly I=%v", cost, n.Config().InterposeCost)
	}
	if s := n.NFSStats(); s.RPCs != 0 {
		t.Fatalf("cache hits issued %d RPCs", s.RPCs)
	}
	// The cached handle remains fully usable.
	data, _, _, err := m.Read(vh2, 0, 100)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read via cached handle: %q err=%v", data, err)
	}
}

// TestReaddirPlusPrewarmsCaches verifies the N+1 collapse: after one
// Readdir, stat-ing every listed entry issues zero further RPCs.
func TestReaddirPlusPrewarmsCaches(t *testing.T) {
	_, nodes := testCluster(t, 4, 9002, Config{})
	n := nodes[0]
	m := n.NewMount()
	const files = 12
	for i := 0; i < files; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/proj/f%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	dirVH, _, _, err := m.LookupPath("/proj")
	if err != nil {
		t.Fatal(err)
	}
	ents, _, err := m.Readdir(dirVH)
	if err != nil || len(ents) != files {
		t.Fatalf("readdir: %d entries err=%v", len(ents), err)
	}

	n.ResetNFSStats()
	for _, e := range ents {
		vh, _, _, err := m.Lookup(dirVH, e.Name)
		if err != nil {
			t.Fatalf("lookup %s: %v", e.Name, err)
		}
		if _, _, err := m.Getattr(vh); err != nil {
			t.Fatalf("getattr %s: %v", e.Name, err)
		}
		m.forget(vh)
	}
	if s := n.NFSStats(); s.RPCs != 0 {
		t.Fatalf("stat-all-entries after readdir issued %d RPCs, want 0", s.RPCs)
	}
}

// TestWriteInvalidatesCachedAttrs: a write through the same mount must not
// leave a stale size in the attribute cache.
func TestWriteInvalidatesCachedAttrs(t *testing.T) {
	_, nodes := testCluster(t, 4, 9003, Config{})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/home/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	vh, attr, _, err := m.LookupPath("/home/f")
	if err != nil || attr.Size != 3 {
		t.Fatalf("lookup: %+v err=%v", attr, err)
	}
	if attr, _, err = m.Getattr(vh); err != nil || attr.Size != 3 {
		t.Fatalf("pre-write getattr: %+v err=%v", attr, err)
	}
	if _, _, err := m.Write(vh, 3, []byte("defg")); err != nil {
		t.Fatal(err)
	}
	if attr, _, err = m.Getattr(vh); err != nil || attr.Size != 7 {
		t.Fatalf("post-write getattr: %+v err=%v (stale cache?)", attr, err)
	}
	sz := int64(2)
	if _, _, err := m.Setattr(vh, localfs.SetAttr{Size: &sz}); err != nil {
		t.Fatal(err)
	}
	if attr, _, err = m.Getattr(vh); err != nil || attr.Size != 2 {
		t.Fatalf("post-truncate getattr: %+v err=%v", attr, err)
	}
}

// TestCrossMountWriteVisibility: a writer on node A must be visible through
// node B's mount — immediately on the data path (reads bypass the metadata
// caches), and on the attribute path no later than the TTL.
func TestCrossMountWriteVisibility(t *testing.T) {
	_, nodes := testCluster(t, 4, 9004, Config{})
	ma := nodes[0].NewMount()
	mb := nodes[1].NewMount()

	if _, err := ma.WriteFile("/share/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	vhB, attrB, _, err := mb.LookupPath("/share/f")
	if err != nil || attrB.Size != 2 {
		t.Fatalf("B lookup: %+v err=%v", attrB, err)
	}
	if attrB, _, err = mb.Getattr(vhB); err != nil || attrB.Size != 2 {
		t.Fatalf("B getattr: %+v err=%v", attrB, err)
	}

	// A extends the file; B's cached size may serve stale within the TTL...
	if _, err := ma.WriteFile("/share/f", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mb.Getattr(vhB); err != nil {
		t.Fatal(err)
	}
	// ...but a fresh open-and-read (close-to-open) sees the new data at once.
	data, _, err := mb.ReadFile("/share/f")
	if err != nil || !bytes.Equal(data, []byte("v2-longer")) {
		t.Fatalf("B read-after-remote-write: %q err=%v", data, err)
	}

	// Past the TTL the attribute cache must revalidate.
	mb.now = func() time.Time {
		return time.Now().Add(nodes[1].Config().AttrCacheTTL + time.Second)
	}
	attrB, _, err = mb.Getattr(vhB)
	if err != nil || attrB.Size != int64(len("v2-longer")) {
		t.Fatalf("B getattr after TTL: %+v err=%v", attrB, err)
	}
}

// TestRenameRemoveDropCacheEntries: mutations must drop the name-cache
// entries they invalidate, on the mutating mount.
func TestRenameRemoveDropCacheEntries(t *testing.T) {
	_, nodes := testCluster(t, 4, 9005, Config{})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/w/old", []byte("x")); err != nil {
		t.Fatal(err)
	}
	dirVH, _, _, err := m.LookupPath("/w")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the caches for /w/old.
	if _, _, _, err := m.Lookup(dirVH, "old"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rename(dirVH, "old", dirVH, "new"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Lookup(dirVH, "old"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("lookup of renamed-away name: %v (served from stale cache?)", err)
	}
	if _, attr, _, err := m.Lookup(dirVH, "new"); err != nil || attr.Size != 1 {
		t.Fatalf("lookup of new name: %+v err=%v", attr, err)
	}

	// Warm, then remove: the name must disappear immediately.
	if _, _, _, err := m.Lookup(dirVH, "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Remove(dirVH, "new"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Lookup(dirVH, "new"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("lookup of removed name: %v (served from stale cache?)", err)
	}
}

// TestFailoverDropsCacheEntries: the failover invalidation path
// (dropCachesUnder) must flush metadata caches, and cached handles naming a
// crashed primary must transparently fail over on next use.
func TestFailoverDropsCacheEntries(t *testing.T) {
	net, nodes := testCluster(t, 6, 9006, Config{Replicas: 2})
	n := nodes[0]
	m := n.NewMount()
	if _, err := m.WriteFile("/ha/f", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	stabilizeAll(nodes)
	dirVH, _, _, err := m.LookupPath("/ha")
	if err != nil {
		t.Fatal(err)
	}
	vh, _, _, err := m.Lookup(dirVH, "f")
	if err != nil {
		t.Fatal(err)
	}

	// dropCachesUnder (the failover hook) must empty both caches for the
	// subtree: the next Getattr goes back to the network.
	m.dropCachesUnder("/ha/f")
	n.ResetNFSStats()
	if _, _, err := m.Getattr(vh); err != nil {
		t.Fatal(err)
	}
	if s := n.NFSStats(); s.RPCs == 0 {
		t.Fatal("getattr after dropCachesUnder served from cache")
	}

	// Crash the primary for /ha: reads through the cached handle must heal.
	pl, _, err := n.ResolvePath("/ha")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Node != n.Addr() { // only meaningful when the primary is remote
		for _, nd := range nodes {
			if nd.Addr() == pl.Node {
				nd.Fail()
			}
		}
		data, _, _, err := m.Read(vh, 0, 100)
		if err != nil || string(data) != "survives" {
			t.Fatalf("read after failover: %q err=%v", data, err)
		}
	}
	_ = net
}

// TestMetadataCacheDisabled: NoMetadataCache must force every Getattr and
// Lookup back onto the network.
func TestMetadataCacheDisabled(t *testing.T) {
	_, nodes := testCluster(t, 4, 9007, Config{NoMetadataCache: true})
	n := nodes[0]
	m := n.NewMount()
	if _, err := m.WriteFile("/home/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	dirVH, _, _, err := m.LookupPath("/home")
	if err != nil {
		t.Fatal(err)
	}
	vh, _, _, err := m.Lookup(dirVH, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Getattr(vh); err != nil {
		t.Fatal(err)
	}
	n.ResetNFSStats()
	if _, _, _, err := m.Lookup(dirVH, "f"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Getattr(vh); err != nil {
		t.Fatal(err)
	}
	if s := n.NFSStats(); s.RPCs == 0 {
		t.Fatal("caching disabled but no RPCs issued")
	}
}

// TestConcurrentCacheUse exercises the cache paths from many goroutines so
// the -race run in CI covers the metadata maps.
func TestConcurrentCacheUse(t *testing.T) {
	_, nodes := testCluster(t, 4, 9008, Config{})
	m := nodes[0].NewMount()
	for i := 0; i < 6; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/c/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	dirVH, _, _, err := m.LookupPath("/c")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("f%d", (g+i)%6)
				vh, _, _, err := m.Lookup(dirVH, name)
				if err != nil {
					t.Errorf("lookup %s: %v", name, err)
					return
				}
				if _, _, err := m.Getattr(vh); err != nil {
					t.Errorf("getattr %s: %v", name, err)
					return
				}
				m.forget(vh)
				switch i % 10 {
				case 3:
					if _, _, err := m.Readdir(dirVH); err != nil {
						t.Errorf("readdir: %v", err)
						return
					}
				case 7:
					p := fmt.Sprintf("/c/g%d", g)
					if _, err := m.WriteFile(p, []byte("y")); err != nil {
						t.Errorf("write %s: %v", p, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
