package core

import (
	"errors"
	"path"
	"time"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Every public Mount operation runs the same five-stage pipeline; this file
// holds the stages that are shared between operations.
//
//	begin    — open the observability context: trace, latency clock
//	           (opCtx via begin/beginAt, closed by done)
//	cache    — consult the client-side attr/name caches; a hit costs only
//	           the interposition constant (metaCache via the Mount wrappers)
//	resolve  — map the virtual path to (node, physical path, handle)
//	           through placement hashing and special links (materialize)
//	failover — run the op body with transparent retry: re-resolve onto a
//	           replica on node failure, stale handles, or primary changes
//	           (withFailover / materializeRetry)
//	rpc      — the op body itself: forwarded NFS calls and kosha-service
//	           applies, written per operation in mount.go / mountdir.go
//
// The interposition constant I is charged exactly once per operation, in
// whichever stage runs first.

// --- begin stage ---

// opCtx carries the observability context of one public mount operation: the
// op name, its trace (nil when tracing is disabled), and the wall-clock start
// when Config.WallClockStats selects wall time over simulated cost.
type opCtx struct {
	m     *Mount
	op    obs.OpCode
	tr    *obs.Trace
	start time.Time
}

// begin opens the observability context for one public operation.
func (m *Mount) begin(op obs.OpCode, vpath string) opCtx {
	o := opCtx{m: m, op: op, tr: m.n.tracer.Start(op.String(), vpath, string(m.n.addr))}
	if m.n.cfg.WallClockStats {
		o.start = time.Now()
	}
	return o
}

// done records the operation's latency sample and counters and publishes the
// trace. Under simnet the sample is the simulated cost; under a real
// transport koshad selects wall time via Config.WallClockStats.
func (o opCtx) done(cost simnet.Cost, err error) {
	n := o.m.n
	d := time.Duration(cost)
	if n.cfg.WallClockStats {
		d = time.Since(o.start)
	}
	n.opHists[o.op].Observe(d)
	n.opsTotal.Add(1)
	if err != nil {
		n.opErrors.Add(1)
	}
	if o.tr != nil {
		n.tracer.Finish(o.tr, d, err)
	}
}

// vpathOf returns the virtual path behind a handle for trace labels ("" when
// the handle is unknown; the operation itself surfaces the error).
func (m *Mount) vpathOf(vh VH) string {
	if !m.n.tracer.Enabled() {
		return ""
	}
	if de, err := m.entry(vh); err == nil {
		return de.vpath
	}
	return ""
}

// beginAt opens the observability context for an operation addressed by
// (directory handle, name); the trace label is only assembled when tracing
// is enabled, so disabled tracing costs no path allocation.
func (m *Mount) beginAt(op obs.OpCode, dir VH, name string) opCtx {
	if !m.n.tracer.Enabled() {
		return m.begin(op, "")
	}
	return m.begin(op, path.Join(m.vpathOf(dir), name))
}

// --- resolve/placement stage ---

// distributedAt reports whether a child of directory de lives at a
// distributed level — hashed to its own node with capacity redirection
// (Sections 3.2-3.3) — rather than on the parent's node. Lookup, Mkdir, and
// Rmdir all branch on this to pick the placement path.
func (m *Mount) distributedAt(de *ventry) bool {
	depth := len(SplitVirtual(de.vpath)) + 1
	return de.place.VRoot || depth <= m.n.cfg.DistributionLevel
}

// staleStore marks a resolution whose cached storage root no longer exists
// (the hierarchy was renamed or removed through another node); the caller
// drops its caches and re-resolves.
var staleStore = errors.New("kosha: cached storage root dangles")

// retryable reports whether an error warrants transparent failover:
// transport failures and stale handles re-resolve onto a replica (Section
// 4.4); ErrNotPrimary re-resolves after an ownership change.
func retryable(err error) bool {
	return errors.Is(err, simnet.ErrUnreachable) ||
		errors.Is(err, ErrNotPrimary) ||
		nfs.IsStatus(err, nfs.ErrStale)
}

// cacheSuspect reports whether an error could be the fault of a stale
// name-cache entry rather than of the operation itself: another client may
// have removed, renamed, or retyped the path since it was cached. Such a
// failure on a cached entry is retried once against a fresh resolution, the
// way the kernel NFS client retries after ESTALE.
func cacheSuspect(err error) bool {
	return nfs.IsStatus(err, nfs.ErrNoEnt) ||
		nfs.IsStatus(err, nfs.ErrNotDir) ||
		nfs.IsStatus(err, nfs.ErrIsDir)
}

// materialize builds a ventry for a virtual path by resolving placement and
// looking the path up on the storage node. It also returns the entry's
// attributes (LOOKUP carries them, as in NFS).
func (m *Mount) materialize(tr *obs.Trace, vpath string) (*ventry, localfs.Attr, simnet.Cost, error) {
	parts := SplitVirtual(vpath)
	if len(parts) == 0 {
		return &ventry{vpath: "/", kind: localfs.TypeDir, place: Place{VRoot: true, Store: "/"}},
			localfs.Attr{Ino: 1, Type: localfs.TypeDir, Mode: 0o755, Nlink: 2}, 0, nil
	}
	var total simnet.Cost

	place, cost, err := m.n.resolveDir(tr, parts)
	total = simnet.Seq(total, cost)
	switch {
	case err == nil:
		phys := place.PhysDir()
		storeComps := pathComponents(place.SubtreeRoot())
		fh, attr, idx, c, lerr := m.n.remoteLookupPathIdx(tr.Ctx(), place.Node, phys)
		total = simnet.Seq(total, c)
		if nfs.IsStatus(lerr, nfs.ErrNoEnt) {
			if idx < storeComps {
				// The resolved storage root itself dangles: a stale cache
				// entry survived a rename/removal done elsewhere.
				lerr = staleStore
			} else {
				_, c2, perr := m.n.promote(tr.Ctx(), place.Node, Track{PN: place.PN(), Root: place.SubtreeRoot()})
				total = simnet.Seq(total, c2)
				if perr == nil {
					fh, attr, idx, c, lerr = m.n.remoteLookupPathIdx(tr.Ctx(), place.Node, phys)
					total = simnet.Seq(total, c)
					if nfs.IsStatus(lerr, nfs.ErrNoEnt) && idx < storeComps {
						lerr = staleStore
					}
				}
			}
		}
		if lerr != nil {
			return nil, localfs.Attr{}, total, lerr
		}
		tr.SetServedBy(string(place.Node))
		ve := &ventry{
			vpath:    JoinVirtual(parts),
			kind:     attr.Type,
			node:     place.Node,
			fh:       fh,
			physPath: phys,
			pn:       place.PN(),
			root:     place.SubtreeRoot(),
			place:    place,
		}
		m.cacheAttr(ve.vpath, attr)
		return ve, attr, total, nil

	case nfs.IsStatus(err, nfs.ErrNotDir):
		// The final component is a file or plain symlink at a depth the
		// resolver treated as a directory level; resolve the parent and
		// look the leaf up there.
		parent, cost, perr := m.n.resolveDir(tr, parts[:len(parts)-1])
		total = simnet.Seq(total, cost)
		if perr != nil {
			return nil, localfs.Attr{}, total, perr
		}
		name := parts[len(parts)-1]
		phys := path.Join(parent.PhysDir(), name)
		storeComps := pathComponents(parent.SubtreeRoot())
		fh, attr, idx, c, lerr := m.n.remoteLookupPathIdx(tr.Ctx(), parent.Node, phys)
		total = simnet.Seq(total, c)
		if nfs.IsStatus(lerr, nfs.ErrNoEnt) && !parent.VRoot {
			if idx < storeComps {
				lerr = staleStore
			} else {
				_, c2, perr := m.n.promote(tr.Ctx(), parent.Node, Track{PN: parent.PN(), Root: parent.SubtreeRoot()})
				total = simnet.Seq(total, c2)
				if perr == nil {
					fh, attr, idx, c, lerr = m.n.remoteLookupPathIdx(tr.Ctx(), parent.Node, phys)
					total = simnet.Seq(total, c)
					if nfs.IsStatus(lerr, nfs.ErrNoEnt) && idx < storeComps {
						lerr = staleStore
					}
				}
			}
		}
		if lerr != nil {
			return nil, localfs.Attr{}, total, lerr
		}
		tr.SetServedBy(string(parent.Node))
		ve := &ventry{
			vpath:    JoinVirtual(parts),
			kind:     attr.Type,
			node:     parent.Node,
			fh:       fh,
			physPath: phys,
			pn:       parent.PN(),
			root:     parent.SubtreeRoot(),
			place:    parent,
		}
		m.cacheAttr(ve.vpath, attr)
		return ve, attr, total, nil

	default:
		return nil, localfs.Attr{}, total, err
	}
}

// materializeRetry is materialize with transparent failover: a retryable
// failure has already invalidated the caches naming the dead node (noteErr),
// so re-resolution routes onto a replica holder. One NoEnt retry with
// dropped caches covers stale resolver entries whose storage root moved
// (renames relocate storage by design). ErrNotDir gets the same single
// revalidation: a re-salting redirect or a rebalancer migration replaces a
// cached directory root with a special link, so a walk through the stale
// entry hits a non-directory where the root used to be; a fresh resolution
// follows the link instead. A genuine not-a-directory error survives the
// retry and is returned unchanged.
func (m *Mount) materializeRetry(tr *obs.Trace, vpath string) (*ventry, localfs.Attr, simnet.Cost, error) {
	var total simnet.Cost
	staleRetried := false
	for attempt := 0; ; attempt++ {
		de, attr, c, err := m.materialize(tr, vpath)
		total = simnet.Seq(total, c)
		if err == nil || attempt >= 3 {
			return de, attr, total, err
		}
		switch {
		case errors.Is(err, staleStore):
			if staleRetried {
				return de, attr, total, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNoEnt}
			}
			staleRetried = true
			m.dropCachesUnder(vpath)
			continue
		case nfs.IsStatus(err, nfs.ErrNotDir) && !staleRetried:
			staleRetried = true
			m.dropCachesUnder(vpath)
			continue
		}
		if !retryable(err) {
			return de, attr, total, err
		}
		m.dropCachesUnder(vpath)
	}
}

// --- failover+retry stage ---

// withFailover runs fn against a ventry, transparently re-resolving and
// retrying on node failure, stale handles, or primary changes. The
// interposition constant I is charged once per operation. Each failover is
// recorded in the overlay event log, the failover latency histogram (the
// cost of re-resolving onto a replica), and the operation's trace.
func (m *Mount) withFailover(tr *obs.Trace, vh VH, fn func(de *ventry) (simnet.Cost, error)) (simnet.Cost, error) {
	total := m.n.cfg.InterposeCost
	de, err := m.entry(vh)
	if err != nil {
		return total, err
	}
	cacheRetried := false
	for attempt := 0; ; attempt++ {
		c, err := fn(de)
		total = simnet.Seq(total, c)
		if err == nil {
			// Deeper instrumentation (apply, replica reads, materialize)
			// records the precise server; otherwise the entry's node
			// served the final RPC.
			if tr != nil && tr.ServedBy == "" {
				tr.SetServedBy(string(de.node))
			}
			return total, nil
		}
		if attempt >= 3 {
			return total, err
		}
		failedOver := false
		switch {
		case retryable(err):
			// Drop state naming the failed node and re-resolve the path:
			// the overlay now routes the key to a node holding a replica.
			// A NotPrimary answer came from a live node — only the stale
			// resolution is dropped, not the node.
			if !errors.Is(err, ErrNotPrimary) {
				m.n.invalidateNode(de.node)
			}
			failedOver = true
		case de.cached && !cacheRetried && cacheSuspect(err):
			// The entry came from the name cache and the failure smells
			// like staleness; revalidate once against a fresh resolution.
			cacheRetried = true
		default:
			return total, err
		}
		m.dropCachesUnder(de.vpath)
		nde, _, c2, rerr := m.materialize(tr, de.vpath)
		total = simnet.Seq(total, c2)
		if failedOver {
			m.n.events.Add(obs.EvFailover, string(m.n.addr), de.vpath)
			m.n.reg.Observe("op."+obs.OpFailover, time.Duration(c2))
			tr.Failover()
		}
		if rerr != nil {
			return total, rerr
		}
		if failedOver && nde.root != "" {
			// Read-repair: the key now resolves to a (possibly freshly
			// promoted) replacement primary. Ask it to surface its replica
			// copy and reconcile versions against the surviving replica set
			// so the retried operation — and a later revival of the failed
			// node — sees converged state. If repair moved the subtree, the
			// handle just materialized is stale; resolve it again.
			changed, c3, perr := m.n.promote(tr.Ctx(), nde.node, Track{PN: nde.pn, Root: nde.root})
			total = simnet.Seq(total, c3)
			if perr == nil && changed {
				m.dropCachesUnder(de.vpath)
				nde, _, c3, rerr = m.materialize(tr, de.vpath)
				total = simnet.Seq(total, c3)
				if rerr != nil {
					return total, rerr
				}
			}
		}
		m.replace(vh, nde)
		de = nde
	}
}

// dropCachesUnder invalidates resolver cache entries for a path and its
// ancestors (any of them may name the failed node), plus this mount's
// metadata caches for the path's subtree (handles and attributes cached
// below a failed or relocated directory are all suspect).
func (m *Mount) dropCachesUnder(vpath string) {
	parts := SplitVirtual(vpath)
	for i := 1; i <= len(parts); i++ {
		m.n.cacheDrop(JoinVirtual(parts[:i]))
	}
	m.dropMetaUnder(vpath)
}
