package core

import (
	"strings"
	"sync"
	"time"

	"repro/internal/localfs"
)

// attrEntry is one attribute-cache row.
type attrEntry struct {
	attr localfs.Attr
	at   time.Time
}

// dnlcEntry is one name-cache row: the fully resolved child (node, handle,
// physical path) plus the attributes LOOKUP would have carried.
type dnlcEntry struct {
	ve   ventry
	attr localfs.Attr
	at   time.Time
}

// mcShards is the shard count of the metadata cache; selection is an FNV-1a
// hash of the virtual path masked by (mcShards-1), so it must be a power of
// two.
const mcShards = 16

// mcShard holds one shard's attribute and name rows behind one mutex.
type mcShard struct {
	mu    sync.Mutex
	attrs map[string]attrEntry // virtual path -> cached attributes
	dnlc  map[string]dnlcEntry // child virtual path -> resolved entry
}

// metaCache is the sharded client-side metadata cache, modeling the kernel
// NFS client's attribute cache and dnlc that the paper's overhead numbers
// rely on (Section 6.1). Rows serve hits for at most a TTL and are
// write-through invalidated by every mutating op and by failover. Sharding
// by path hash keeps cache probes for different files off one global mutex;
// the TTL clock is injected per call so tests can warp time.
type metaCache struct {
	shards [mcShards]mcShard
}

func (c *metaCache) init() {
	for i := range c.shards {
		c.shards[i].attrs = make(map[string]attrEntry)
		c.shards[i].dnlc = make(map[string]dnlcEntry)
	}
}

func (c *metaCache) shard(vpath string) *mcShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(vpath); i++ {
		h ^= uint32(vpath[i])
		h *= prime32
	}
	return &c.shards[h&(mcShards-1)]
}

func (c *metaCache) putAttr(vpath string, a localfs.Attr, now time.Time) {
	s := c.shard(vpath)
	s.mu.Lock()
	s.attrs[vpath] = attrEntry{attr: a, at: now}
	s.mu.Unlock()
}

func (c *metaCache) getAttr(vpath string, now time.Time, ttl time.Duration) (localfs.Attr, bool) {
	s := c.shard(vpath)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.attrs[vpath]
	if !ok {
		return localfs.Attr{}, false
	}
	if now.Sub(e.at) > ttl {
		delete(s.attrs, vpath)
		return localfs.Attr{}, false
	}
	return e.attr, true
}

func (c *metaCache) dropAttr(vpath string) {
	s := c.shard(vpath)
	s.mu.Lock()
	delete(s.attrs, vpath)
	s.mu.Unlock()
}

func (c *metaCache) putName(ve ventry, a localfs.Attr, now time.Time) {
	s := c.shard(ve.vpath)
	s.mu.Lock()
	s.dnlc[ve.vpath] = dnlcEntry{ve: ve, attr: a, at: now}
	s.mu.Unlock()
}

func (c *metaCache) getName(vpath string, now time.Time, ttl time.Duration) (ventry, localfs.Attr, bool) {
	s := c.shard(vpath)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dnlc[vpath]
	if !ok {
		return ventry{}, localfs.Attr{}, false
	}
	if now.Sub(e.at) > ttl {
		delete(s.dnlc, vpath)
		return ventry{}, localfs.Attr{}, false
	}
	return e.ve, e.attr, true
}

// dropUnder invalidates cached metadata for vpath and everything below it
// (rename/remove/failover relocate whole subtrees). Subtree members hash to
// arbitrary shards, so every shard is swept.
func (c *metaCache) dropUnder(vpath string) {
	prefix := strings.TrimSuffix(vpath, "/") + "/"
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for p := range s.attrs {
			if p == vpath || strings.HasPrefix(p, prefix) {
				delete(s.attrs, p)
			}
		}
		for p := range s.dnlc {
			if p == vpath || strings.HasPrefix(p, prefix) {
				delete(s.dnlc, p)
			}
		}
		s.mu.Unlock()
	}
}
