package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCtlStatsTraceRoundTrip drives a workload through the virtual mount and
// then reads the node's observability surface back through the CTL protocol,
// checking the two cross-layer invariants the stats surface promises:
//
//  1. the per-procedure RPC latency histograms account for exactly the RPCs
//     the node's NFS client issued (one shared registry, no double counting);
//  2. a LOOKUP trace that recorded route hops ends at the node that served
//     the final NFS RPC (the hop list and ServedBy agree).
func TestCtlStatsTraceRoundTrip(t *testing.T) {
	_, nodes := testCluster(t, 8, 97, Config{Replicas: 2})
	for _, nd := range nodes {
		nd.AttachCtl()
	}

	// Populate through node 0, then resolve everything freshly through node 5
	// so its traces include overlay route hops (nothing is in its caches).
	m0 := nodes[0].NewMount()
	const dirs = 4
	for i := 0; i < dirs; i++ {
		p := fmt.Sprintf("/proj%d/file.txt", i)
		if _, err := m0.WriteFile(p, []byte("observable")); err != nil {
			t.Fatalf("populate %s: %v", p, err)
		}
	}
	m5 := nodes[5].NewMount()
	for i := 0; i < dirs; i++ {
		p := fmt.Sprintf("/proj%d/file.txt", i)
		if _, _, _, err := m5.LookupPath(p); err != nil {
			t.Fatalf("lookup %s: %v", p, err)
		}
	}

	ctl := &CtlClient{Net: nodes[0].net, From: nodes[0].Addr(), To: nodes[5].Addr()}
	payload, _, err := ctl.Stats()
	if err != nil {
		t.Fatalf("ctl stats: %v", err)
	}
	if payload.Addr != string(nodes[5].Addr()) || payload.NodeID == "" {
		t.Fatalf("payload identity addr=%q node_id=%q", payload.Addr, payload.NodeID)
	}

	// Invariant 1: Σ rpc.<PROC> histogram counts == nfs.rpcs == what the
	// node's own NFS client reports.
	var rpcHist uint64
	for name, h := range payload.Stats.Hists {
		if strings.HasPrefix(name, "rpc.") {
			rpcHist += h.Count
		}
	}
	rpcs := payload.Stats.Counters["nfs.rpcs"]
	if rpcHist != rpcs {
		t.Errorf("rpc histogram counts sum to %d, nfs.rpcs counter is %d", rpcHist, rpcs)
	}
	if got := nodes[5].NFSStats().RPCs; rpcs != got {
		t.Errorf("snapshot nfs.rpcs = %d, client reports %d", rpcs, got)
	}
	if rpcs == 0 {
		t.Error("node 5 issued no NFS RPCs; workload did not exercise the client")
	}
	if c := payload.Stats.Hists["op."+obs.OpLookup].Count; c < dirs {
		t.Errorf("op.LOOKUP histogram count = %d, want >= %d", c, dirs)
	}

	// Invariant 2: clean single-resolution LOOKUP traces with hops end at
	// ServedBy. Failover or multi-target ops may legitimately diverge, so
	// only clean lookups are asserted on — but some must exist.
	traces, _, err := ctl.TraceDump(0)
	if err != nil {
		t.Fatalf("ctl trace dump: %v", err)
	}
	checked := 0
	for _, tr := range traces {
		if tr.Op != obs.OpLookup || tr.Err != "" || tr.Failovers != 0 {
			continue
		}
		if len(tr.Hops) == 0 || tr.ServedBy == "" {
			continue
		}
		checked++
		if last := tr.Hops[len(tr.Hops)-1].Addr; last != tr.ServedBy {
			t.Errorf("trace %d (%s): hop list ends at %s, served by %s",
				tr.ID, tr.Path, last, tr.ServedBy)
		}
	}
	if checked == 0 {
		t.Fatal("no clean LOOKUP traces with route hops retained")
	}

	// Bounded dumps come back newest first.
	two, _, err := ctl.TraceDump(2)
	if err != nil || len(two) > 2 {
		t.Fatalf("TraceDump(2) = %d traces, err=%v", len(two), err)
	}
	if len(two) == 2 && two[0].ID < two[1].ID {
		t.Errorf("trace dump not newest-first: ids %d, %d", two[0].ID, two[1].ID)
	}
}
