package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// collectFrags gathers one trace's span fragments from every live node over
// the CTL protocol, exactly as koshactl trace -id does, returning the origin
// trace (from whichever node retained it) and the merged fragment list.
func collectFrags(t *testing.T, nodes []*Node, hi, lo uint64) (*obs.Trace, []obs.SpanRecord) {
	t.Helper()
	var origin *obs.Trace
	var frags []obs.SpanRecord
	for _, nd := range nodes {
		ctl := &CtlClient{Net: nodes[0].net, From: nodes[0].Addr(), To: nd.Addr()}
		frag, _, err := ctl.TraceFrag(hi, lo)
		if err != nil {
			continue // dead node: reassembly works from the survivors
		}
		frags = append(frags, frag.Spans...)
		if origin == nil && frag.Origin != nil {
			origin = frag.Origin
		}
	}
	return origin, frags
}

// TestCrossNodeTraceAssembly drives a mutation through a cold mount on a
// 6-node cluster and rebuilds its causal tree from per-node fragments: the
// tree must contain overlay route hops, the serving node's work, and the
// replica fan-out the primary issued — each recorded by a different node,
// all under one 128-bit trace id.
func TestCrossNodeTraceAssembly(t *testing.T) {
	_, nodes := testCluster(t, 6, 71, Config{Replicas: 2})
	for _, nd := range nodes {
		nd.AttachCtl()
	}
	// A cold mount on node 5: nothing cached, so resolution routes through
	// the overlay and the apply fans out to 2 replicas.
	m := nodes[5].NewMount()
	if _, err := m.WriteFile("/traced/file.txt", []byte("observable payload")); err != nil {
		t.Fatal(err)
	}

	// WriteFile is compound (mkdir, create, write, commit); each leg traced
	// separately. At least one of node 5's traces must assemble into a tree
	// with a route hop, a serving span, and a replica fan-out span.
	var best *obs.AssembledTrace
	for _, tr := range nodes[5].Tracer().Recent(0) {
		if tr.Hi == 0 && tr.Lo == 0 {
			continue
		}
		origin, frags := collectFrags(t, nodes, tr.Hi, tr.Lo)
		if origin == nil {
			t.Fatalf("origin trace %s not found via CTL", obs.FormatTraceID(tr.Hi, tr.Lo))
		}
		at := obs.Assemble(tr.Hi, tr.Lo, origin, frags)
		if hasSpan(at, "pastry.next-hop") && hasSpan(at, "kosha.apply") && hasSpan(at, "kosha.mirror") {
			best = at
			break
		}
	}
	if best == nil {
		t.Fatal("no trace assembled with route hop + apply + mirror spans")
	}
	if best.NodeCount < 3 {
		t.Fatalf("NodeCount = %d, want >= 3 (origin, primary, replica)", best.NodeCount)
	}
	// The mirror spans must be children of the primary's apply span and must
	// have executed on nodes other than the primary.
	mirrors := 0
	best.Walk(func(depth int, n *obs.TraceNode) {
		if n.Span.Name != "kosha.mirror" {
			return
		}
		mirrors++
		if depth == 0 {
			t.Error("mirror span surfaced as a root: fan-out not parented under apply")
		}
	})
	if mirrors < 2 {
		t.Fatalf("assembled %d mirror spans, want >= 2 (Replicas: 2)", mirrors)
	}
	var applyNode string
	best.Walk(func(_ int, n *obs.TraceNode) {
		if n.Span.Name == "kosha.apply" {
			applyNode = n.Span.Node
		}
	})
	if applyNode == "" || applyNode == best.Origin.Node {
		t.Fatalf("apply served by %q, want a remote primary (origin %q)", applyNode, best.Origin.Node)
	}
	// Every fragment must carry the same 128-bit id (SpansFor filtered by the
	// serving nodes, re-check after assembly).
	best.Walk(func(_ int, n *obs.TraceNode) {
		if n.Span.Hi != best.Hi || n.Span.Lo != best.Lo {
			t.Fatalf("span %+v escaped trace %s", n.Span, obs.FormatTraceID(best.Hi, best.Lo))
		}
	})
}

func hasSpan(at *obs.AssembledTrace, name string) bool {
	found := false
	at.Walk(func(_ int, n *obs.TraceNode) {
		if n.Span.Name == name {
			found = true
		}
	})
	return found
}

// TestFailoverKeepsOneTraceID kills a primary and reads through it: the
// transparently retried operation must surface as ONE trace whose id the
// replacement server's spans carry — not a second trace for the retry.
func TestFailoverKeepsOneTraceID(t *testing.T) {
	_, nodes := testCluster(t, 6, 13, Config{Replicas: 2})
	for _, nd := range nodes {
		nd.AttachCtl()
	}
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/failme/precious.txt", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	pl, _, err := nodes[0].ResolvePath("/failme")
	if err != nil {
		t.Fatal(err)
	}
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	reader := nodes[(indexOf(nodes, primary)+1)%len(nodes)]
	m = reader.NewMount()
	// Resolve a handle while the primary is alive, then kill it: the next
	// access through the held handle must fail against the dead node and be
	// transparently retried against a replica, all inside one operation.
	vh, _, _, err := m.LookupPath("/failme/precious.txt")
	if err != nil {
		t.Fatal(err)
	}
	primary.Fail()

	data, _, _, err := m.Read(vh, 0, 100)
	if err != nil || string(data) != "survives" {
		t.Fatalf("failover read %q err=%v", data, err)
	}
	var failed *obs.Trace
	for _, tr := range reader.Tracer().Recent(0) {
		if tr.Failovers > 0 {
			tr := tr
			failed = &tr
			break
		}
	}
	if failed == nil {
		t.Fatal("no trace recorded a failover")
	}
	// Uniqueness: the retry continued the original trace, it did not open a
	// second one for the same op under a different id.
	count := 0
	for _, tr := range reader.Tracer().Recent(0) {
		if tr.Hi == failed.Hi && tr.Lo == failed.Lo {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d traces share id %s, want exactly 1", count, obs.FormatTraceID(failed.Hi, failed.Lo))
	}
	// The failed attempt and the retry both live inside it: a failover was
	// counted, and the post-failover spans (re-resolution, promote, the
	// retried read) were recorded by the surviving nodes under the SAME id.
	live := make([]*Node, 0, len(nodes))
	for _, nd := range nodes {
		if nd != primary {
			live = append(live, nd)
		}
	}
	_, frags := collectFrags(t, live, failed.Hi, failed.Lo)
	remote := 0
	for _, f := range frags {
		if f.Node != string(reader.Addr()) {
			remote++
		}
	}
	if remote == 0 {
		t.Fatalf("no surviving node recorded retry spans for trace %s",
			obs.FormatTraceID(failed.Hi, failed.Lo))
	}
}

// TestDupReplaysDoNotDoubleRecordSpans runs traced mutations while every
// link duplicates its messages: the DRC keeps the mutations at-most-once,
// and the transport records exactly one server span per logical exchange,
// so the assembled trees contain no double-counted work.
func TestDupReplaysDoNotDoubleRecordSpans(t *testing.T) {
	net, nodes := testCluster(t, 4, 97, Config{Replicas: 1})
	for _, nd := range nodes {
		nd.AttachCtl()
	}
	net.SetFaults(func(from, to simnet.Addr, service string) simnet.LinkFault {
		return simnet.LinkFault{Dup: true}
	})
	defer net.SetFaults(nil)

	m := nodes[3].NewMount()
	if _, err := m.WriteFile("/dup/once.txt", []byte("exactly once")); err != nil {
		t.Fatal(err)
	}
	data, _, err := m.ReadFile("/dup/once.txt")
	if err != nil || string(data) != "exactly once" {
		t.Fatalf("read under dup faults: %q err=%v", data, err)
	}

	checked := 0
	for _, tr := range nodes[3].Tracer().Recent(0) {
		if tr.Hi == 0 && tr.Lo == 0 {
			continue
		}
		seen := make(map[uint64]obs.SpanRecord)
		for _, nd := range nodes {
			for _, sp := range nd.Tracer().SpansFor(tr.Hi, tr.Lo) {
				if prev, dup := seen[sp.Span]; dup {
					t.Fatalf("span %d recorded twice (%+v vs %+v)", sp.Span, prev, sp)
				}
				seen[sp.Span] = sp
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no server spans recorded under dup faults")
	}
}

// TestProbeHealthGauges checks the overlay-health gauges ProbeHealth
// publishes: leaf-set occupancy, routing-table fill, and replica digest lag
// (zero after a sync, positive when a replica goes stale).
func TestProbeHealthGauges(t *testing.T) {
	_, nodes := testCluster(t, 5, 29, Config{Replicas: 1})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/health/a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pl, _, err := nodes[0].ResolvePath("/health")
	if err != nil {
		t.Fatal(err)
	}
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	primary.SyncReplicas()
	primary.ProbeHealth()

	snap := primary.Obs().Snapshot()
	if snap.Gauges[GaugeLeafSize] < 4 {
		t.Fatalf("%s = %d, want 4 (5-node cluster)", GaugeLeafSize, snap.Gauges[GaugeLeafSize])
	}
	if snap.Gauges[GaugeLeafIdeal] <= 0 || snap.Gauges[GaugeTableRows] <= 0 {
		t.Fatalf("ideal/rows gauges unset: %v", snap.Gauges)
	}
	if lag := snap.Gauges[GaugeReplicaLag]; lag != 0 {
		t.Fatalf("%s = %d after sync, want 0", GaugeReplicaLag, lag)
	}

	// Mutate the primary copy behind the replicas' backs: lag must surface.
	if _, err := m.WriteFile("/health/b.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Mirror fan-out already replicated b.txt; dirty the replica instead by
	// failing one replica holder so its digest RPC errors.
	reps := primary.Overlay().ReplicaCandidates(1)
	if len(reps) != 1 {
		t.Fatalf("replica candidates = %v", reps)
	}
	for _, nd := range nodes {
		if nd.Addr() == reps[0].Addr {
			nd.Fail()
		}
	}
	primary.ProbeHealth()
	if lag := primary.Obs().Snapshot().Gauges[GaugeReplicaLag]; lag <= 0 {
		t.Fatalf("%s = %d with a dead replica, want > 0", GaugeReplicaLag, lag)
	}
}

// TestCtlObservabilityRoundTrip exercises the three new CTL procedures end
// to end: trace fragments, sampler timelines, and the slow-op recorder.
func TestCtlObservabilityRoundTrip(t *testing.T) {
	_, nodes := testCluster(t, 4, 53, Config{Replicas: 1, SlowOpNS: 1})
	for _, nd := range nodes {
		nd.AttachCtl()
	}
	m := nodes[3].NewMount()
	if _, err := m.WriteFile("/ctl/x.txt", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ctl := &CtlClient{Net: nodes[0].net, From: nodes[0].Addr(), To: nodes[3].Addr()}

	// Trace fragments: the origin node returns the trace plus local spans.
	traces, _, err := ctl.TraceDump(1)
	if err != nil || len(traces) != 1 {
		t.Fatalf("trace dump: %v err=%v", traces, err)
	}
	frag, _, err := ctl.TraceFrag(traces[0].Hi, traces[0].Lo)
	if err != nil {
		t.Fatal(err)
	}
	if frag.Node != string(nodes[3].Addr()) {
		t.Fatalf("frag.Node = %q", frag.Node)
	}
	if frag.Origin == nil || frag.Origin.Hi != traces[0].Hi || frag.Origin.Lo != traces[0].Lo {
		t.Fatalf("frag origin = %+v", frag.Origin)
	}

	// Sampler: tick twice around counter movement, read the timeline back.
	nodes[3].Sampler().TickNow(time.Unix(100, 0))
	nodes[3].Obs().Counter("test.ctl").Add(5)
	nodes[3].Sampler().TickNow(time.Unix(101, 0))
	samples, _, err := ctl.Samples(0)
	if err != nil || len(samples) != 1 {
		t.Fatalf("samples = %d err=%v", len(samples), err)
	}
	if samples[0].Rates["test.ctl"] != 5 {
		t.Fatalf("sample rates = %v", samples[0].Rates)
	}

	// Slow-op recorder: with SlowOpNS=1 every op qualifies.
	slow, _, err := ctl.SlowDump(0)
	if err != nil || len(slow) == 0 {
		t.Fatalf("slow dump = %d err=%v", len(slow), err)
	}
	for _, tr := range slow {
		if tr.TotalNS < 1 {
			t.Fatalf("sub-threshold trace in slow ring: %+v", tr)
		}
	}

	// Span names decode per-service procs; spot-check the apply that this
	// WriteFile fanned out (recorded on the primary, visible via its frag).
	found := false
	for _, nd := range nodes {
		c := &CtlClient{Net: nodes[0].net, From: nodes[0].Addr(), To: nd.Addr()}
		f, _, err := c.TraceFrag(traces[0].Hi, traces[0].Lo)
		if err != nil {
			continue
		}
		for _, sp := range f.Spans {
			if strings.HasPrefix(sp.Name, "kosha.") || strings.HasPrefix(sp.Name, "nfs.") || strings.HasPrefix(sp.Name, "pastry.") {
				found = true
			}
			if strings.HasSuffix(sp.Name, ".?") {
				t.Errorf("undecoded span name %q on %s", sp.Name, sp.Node)
			}
		}
	}
	if !found {
		t.Error("no service-qualified span names collected")
	}
}
