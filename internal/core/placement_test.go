package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSaltDeterministic(t *testing.T) {
	if Salt("beta", 1) != Salt("beta", 1) {
		t.Fatal("salt not deterministic")
	}
	if Salt("beta", 1) == Salt("beta", 2) {
		t.Fatal("salts for different attempts should differ")
	}
	if Salt("beta", 1) == Salt("gamma", 1) {
		t.Fatal("salts for different names should differ")
	}
	if len(Salt("x", 3)) != saltLen {
		t.Fatalf("salt length = %d", len(Salt("x", 3)))
	}
}

func TestSaltedRoundTrip(t *testing.T) {
	if Salted("docs", 0) != "docs" {
		t.Fatal("attempt 0 must be unsalted")
	}
	s := Salted("docs", 3)
	if !IsSalted(s) {
		t.Fatalf("%q not recognized as salted", s)
	}
	if BaseName(s) != "docs" {
		t.Fatalf("BaseName(%q) = %q", s, BaseName(s))
	}
	if IsSalted("docs") {
		t.Fatal("plain name flagged as salted")
	}
	if BaseName("docs") != "docs" {
		t.Fatal("BaseName of plain name changed it")
	}
}

func TestIsSaltedEdgeCases(t *testing.T) {
	cases := map[string]bool{
		"a#12345678":     true,
		"a#1234567":      false, // 7 hex digits
		"a#123456789":    false, // 9 hex digits
		"a#1234567g":     false, // non-hex
		"#12345678":      true,  // empty base is still salted shape
		"a#b#12345678":   true,  // salt applies to last segment
		"plain":          false,
		"trailing#":      false,
		"a#1234567G":     false, // uppercase not produced by Salt
		"MIGRATION_FLAG": false,
	}
	for s, want := range cases {
		if got := IsSalted(s); got != want {
			t.Errorf("IsSalted(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestKeyMatchesHash(t *testing.T) {
	if Key("beta") != Key("beta") {
		t.Fatal("Key not deterministic")
	}
	if Key("beta") == Key("beta#12345678") {
		t.Fatal("salted name must hash differently")
	}
}

func TestSplitJoinVirtual(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"/", nil},
		{"", nil},
		{"/a", []string{"a"}},
		{"/a/b/c", []string{"a", "b", "c"}},
		{"a/b", []string{"a", "b"}},
		{"/a//b/", []string{"a", "b"}},
		{"/a/./b", []string{"a", "b"}},
		{"/a/../b", []string{"b"}},
	}
	for _, c := range cases {
		got := SplitVirtual(c.in)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("SplitVirtual(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if JoinVirtual(nil) != "/" {
		t.Error("JoinVirtual(nil)")
	}
	if JoinVirtual([]string{"a", "b"}) != "/a/b" {
		t.Error("JoinVirtual(a,b)")
	}
}

func TestControllingDepth(t *testing.T) {
	cases := []struct {
		dirDepth, level, want int
	}{
		{0, 1, 0},
		{1, 1, 1},
		{3, 1, 1},
		{3, 2, 2},
		{2, 4, 2},
		{5, 4, 4},
		{3, 0, 1}, // level clamped to 1
	}
	for _, c := range cases {
		if got := ControllingDepth(c.dirDepth, c.level); got != c.want {
			t.Errorf("ControllingDepth(%d,%d) = %d, want %d", c.dirDepth, c.level, got, c.want)
		}
	}
}

func TestPhysPath(t *testing.T) {
	if PhysPath(nil, nil) != "/" {
		t.Error("empty")
	}
	if PhysPath([]string{"a#12345678"}, nil) != "/a#12345678" {
		t.Error("chain only")
	}
	want := "/a" + ChainSep + "b#12345678/x/y"
	if got := PhysPath([]string{"a", "b#12345678"}, []string{"x", "y"}); got != want {
		t.Errorf("chain+rest = %q, want %q", got, want)
	}
	if ChainRoot([]string{"a", "b"}) != "/a"+ChainSep+"b" {
		t.Error("ChainRoot")
	}
	if ChainRoot(nil) != "/" {
		t.Error("empty ChainRoot")
	}
}

func TestHidden(t *testing.T) {
	if !Hidden(MigrationFlag) {
		t.Error("flag must be hidden")
	}
	if !Hidden("dir#12345678") {
		t.Error("salted dirs must be hidden")
	}
	if Hidden("normal.txt") || Hidden("a#b") {
		t.Error("normal names must not be hidden")
	}
	if !Hidden("a" + ChainSep + "b") {
		t.Error("chain-encoded subtree roots must be hidden")
	}
	if !Hidden(RepArea[1:]) {
		t.Error("replica area must be hidden")
	}
}

func TestPropSaltedBaseNameInverse(t *testing.T) {
	f := func(name string, attempt uint8) bool {
		if strings.ContainsRune(name, '/') {
			return true
		}
		a := int(attempt % 16)
		pn := Salted(name, a)
		if a == 0 {
			return pn == name
		}
		return IsSalted(pn) && BaseName(pn) == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSaltedKeysSpread(t *testing.T) {
	// Different attempts must (essentially always) map to different keys.
	name := "victim"
	seen := map[string]bool{}
	for a := 0; a < 16; a++ {
		k := Key(Salted(name, a)).String()
		if seen[k] {
			t.Fatalf("key collision at attempt %d", a)
		}
		seen[k] = true
	}
}

func TestValidName(t *testing.T) {
	good := []string{"alice", "notes.txt", "a#b", "x-y_z", "file#1234567"}
	for _, n := range good {
		if err := ValidName(n); err != nil {
			t.Errorf("ValidName(%q) = %v, want nil", n, err)
		}
	}
	bad := []string{
		"", ".", "..", "a/b",
		"dir#12345678",       // reserved redirection pattern
		"a" + ChainSep + "b", // chain separator
		LinkMarker + "evil",  // link marker
		MigrationFlag,        // migration sentinel
		RepArea[1:],          // replica area
		strings.Repeat("x", 300),
	}
	for _, n := range bad {
		if err := ValidName(n); err == nil {
			t.Errorf("ValidName(%q) accepted", n)
		}
	}
}

func TestLinkTargetMarker(t *testing.T) {
	pn, store, ok := ParseLinkTarget(MakeLinkTarget("docs#deadbeef", "/\x01docs.12ab"))
	if !ok || pn != "docs#deadbeef" || store != "/\x01docs.12ab" {
		t.Fatalf("round trip: %q %q %v", pn, store, ok)
	}
	if _, _, ok := ParseLinkTarget("plain-user-target"); ok {
		t.Fatal("user target recognized as special")
	}
	if _, _, ok := ParseLinkTarget(""); ok {
		t.Fatal("empty target recognized as special")
	}
	if _, _, ok := ParseLinkTarget(LinkMarker + "no-separator"); ok {
		t.Fatal("marker without separator recognized as special")
	}
}
