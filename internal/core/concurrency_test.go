package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMountDisjointPaths drives one shared Mount from many
// goroutines, each working an independent file, and verifies under -race
// that the sharded handle table and metadata caches keep the hot path safe:
// lookups, reads, writes, and stats on disjoint files must neither corrupt
// state nor observe each other's data.
func TestConcurrentMountDisjointPaths(t *testing.T) {
	_, nodes := testCluster(t, 4, 9401, Config{})
	m := nodes[0].NewMount()

	const workers = 8
	const iters = 25
	for i := 0; i < workers; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/conc/w%d/data", i), []byte(fmt.Sprintf("seed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vpath := fmt.Sprintf("/conc/w%d/data", w)
			want := fmt.Sprintf("seed-%d", w)
			for it := 0; it < iters; it++ {
				vh, _, _, err := m.LookupPath(vpath)
				if err != nil {
					errs <- fmt.Errorf("worker %d lookup: %w", w, err)
					return
				}
				if _, _, err := m.Getattr(vh); err != nil {
					errs <- fmt.Errorf("worker %d getattr: %w", w, err)
					return
				}
				data, _, _, err := m.Read(vh, 0, 64)
				if err != nil || string(data) != want {
					errs <- fmt.Errorf("worker %d read: %q err=%v", w, data, err)
					return
				}
				if _, _, err := m.Write(vh, 0, []byte(want)); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				m.forget(vh)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMountSharedPath hammers one file and one directory from
// many goroutines: concurrent reads, attribute fetches, directory listings,
// and interleaved writes against the same virtual path. Exercises the
// shared-shard paths (same hash buckets, same handle rows) plus concurrent
// cache invalidation.
func TestConcurrentMountSharedPath(t *testing.T) {
	_, nodes := testCluster(t, 4, 9402, Config{})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/shared/hot.txt", []byte("hot")); err != nil {
		t.Fatal(err)
	}
	dirVH, _, _, err := m.LookupPath("/shared")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch w % 4 {
				case 0: // reader
					vh, _, _, err := m.Lookup(dirVH, "hot.txt")
					if err != nil {
						errs <- fmt.Errorf("reader lookup: %w", err)
						return
					}
					if _, _, _, err := m.Read(vh, 0, 16); err != nil {
						errs <- fmt.Errorf("reader read: %w", err)
						return
					}
					m.forget(vh)
				case 1: // statter
					vh, _, _, err := m.Lookup(dirVH, "hot.txt")
					if err != nil {
						errs <- fmt.Errorf("statter lookup: %w", err)
						return
					}
					if _, _, err := m.Getattr(vh); err != nil {
						errs <- fmt.Errorf("statter getattr: %w", err)
						return
					}
					m.forget(vh)
				case 2: // lister
					if _, _, err := m.Readdir(dirVH); err != nil {
						errs <- fmt.Errorf("lister readdir: %w", err)
						return
					}
				case 3: // writer
					vh, _, _, err := m.Lookup(dirVH, "hot.txt")
					if err != nil {
						errs <- fmt.Errorf("writer lookup: %w", err)
						return
					}
					if _, _, err := m.Write(vh, 0, []byte("hot")); err != nil {
						errs <- fmt.Errorf("writer write: %w", err)
						return
					}
					m.forget(vh)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	data, _, err := m.ReadFile("/shared/hot.txt")
	if err != nil || string(data) != "hot" {
		t.Fatalf("after stress: %q err=%v", data, err)
	}
	if spread := m.ReadSpread(); len(spread) == 0 {
		t.Fatal("no reads recorded")
	}
}
