package core

import (
	"bytes"
	"testing"

	"repro/internal/localfs"
)

func TestCtlRoundTrip(t *testing.T) {
	_, nodes := testCluster(t, 4, 81, Config{Replicas: 1})
	for _, nd := range nodes {
		nd.AttachCtl()
	}
	ctl := &CtlClient{Net: nodes[0].net, From: nodes[0].Addr(), To: nodes[2].Addr()}

	if _, err := ctl.WriteFile("/ops/readme.md", []byte("# kosha")); err != nil {
		t.Fatal(err)
	}
	data, _, err := ctl.ReadFile("/ops/readme.md")
	if err != nil || !bytes.Equal(data, []byte("# kosha")) {
		t.Fatalf("read %q err=%v", data, err)
	}
	ents, _, err := ctl.List("/ops")
	if err != nil || len(ents) != 1 || ents[0].Name != "readme.md" {
		t.Fatalf("list %v err=%v", ents, err)
	}
	st, _, err := ctl.Stat("/ops/readme.md")
	if err != nil || st.Type != localfs.TypeRegular || st.Size != 7 {
		t.Fatalf("stat %+v err=%v", st, err)
	}
	if _, err := ctl.MkdirAll("/ops/logs/2026"); err != nil {
		t.Fatal(err)
	}
	status, _, err := ctl.Status()
	if err != nil || status.NodeID == "" {
		t.Fatalf("status %+v err=%v", status, err)
	}
	peers, _, err := ctl.Peers()
	if err != nil || len(peers) != 3 {
		t.Fatalf("peers %v err=%v", peers, err)
	}
	if _, err := ctl.RemoveAll("/ops"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctl.Stat("/ops"); err == nil {
		t.Fatal("stat of removed tree should fail")
	}
	// Errors propagate as messages.
	if _, _, err := ctl.ReadFile("/never"); err == nil {
		t.Fatal("read of missing file should fail")
	}
	if _, _, err := ctl.List("/never"); err == nil {
		t.Fatal("list of missing dir should fail")
	}
}
