package trace

import "math/rand"

// This file turns a synthesized file-system snapshot (GenFS) into a
// sustained operation stream: the scale soak replays the Purdue trace not
// as a one-shot ingest but as continuous traffic — creates and overwrites
// drawn from the trace's Zipf user activity and lognormal sizes, mixed
// with reads, stats, and directory scans of data written so far. The
// stream is self-consistent (reads only target files already written) and
// deterministic per (trace, config, seed).

// WorkloadOpKind classifies one workload operation.
type WorkloadOpKind int

const (
	// OpWrite creates or overwrites a trace file.
	OpWrite WorkloadOpKind = iota
	// OpRead reads back a file written earlier in the stream.
	OpRead
	// OpStat stats a file written earlier in the stream.
	OpStat
	// OpReaddir lists the directory of a file written earlier.
	OpReaddir
)

func (k WorkloadOpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpReaddir:
		return "readdir"
	}
	return "?"
}

// WorkloadOp is one operation of the stream.
type WorkloadOp struct {
	Kind WorkloadOpKind
	Path string // file path (OpWrite/OpRead/OpStat) or directory (OpReaddir)
	Size int64  // payload size for OpWrite
}

// WorkloadConfig parameterizes the stream.
type WorkloadConfig struct {
	// ReadFrac/WriteFrac/StatFrac/ReaddirFrac weigh the operation mix; they
	// are normalized, so any positive scale works.
	ReadFrac, WriteFrac, StatFrac, ReaddirFrac float64
	// MaxFileBytes caps write payload sizes. The Purdue trace's lognormal
	// tail reaches into megabytes; replaying tens of thousands of such
	// writes across hundreds of in-memory stores (times K replicas) would
	// be all allocator and no protocol, so the soak truncates payloads
	// while keeping the trace's paths and tree shape. 0 keeps trace sizes.
	MaxFileBytes int64
}

// DefaultWorkloadConfig is the soak's mix: read-mostly with a steady write
// stream, a sprinkle of metadata scans.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		ReadFrac:     0.50,
		WriteFrac:    0.30,
		StatFrac:     0.15,
		ReaddirFrac:  0.05,
		MaxFileBytes: 4 << 10,
	}
}

// Workload is a deterministic operation stream over one FSTrace.
type Workload struct {
	cfg   WorkloadConfig
	r     *rand.Rand
	files []File

	written    []int        // indices into files, in write order
	wasWritten map[int]bool // membership for written
	cursor     int          // next never-written file to create
}

// NewWorkload builds a stream over t. The same (t, cfg, seed) always yields
// the same operation sequence.
func NewWorkload(t *FSTrace, cfg WorkloadConfig, seed uint64) *Workload {
	if cfg.ReadFrac+cfg.WriteFrac+cfg.StatFrac+cfg.ReaddirFrac <= 0 {
		cfg = DefaultWorkloadConfig()
	}
	return &Workload{
		cfg:        cfg,
		r:          rand.New(rand.NewSource(int64(seed))),
		files:      t.Files,
		wasWritten: map[int]bool{},
	}
}

// Written returns how many distinct trace files the stream has created.
func (w *Workload) Written() int { return len(w.written) }

// Next returns the next operation of the stream.
func (w *Workload) Next() WorkloadOp {
	kind := w.pick()
	if len(w.written) == 0 {
		kind = OpWrite // nothing to read yet
	}
	switch kind {
	case OpWrite:
		// Fresh create while trace files remain (sustaining the ingest),
		// otherwise an overwrite of a previously-written file.
		var idx int
		if w.cursor < len(w.files) {
			idx = w.cursor
			w.cursor++
			w.written = append(w.written, idx)
			w.wasWritten[idx] = true
		} else {
			idx = w.written[w.r.Intn(len(w.written))]
		}
		f := w.files[idx]
		size := f.Size
		if w.cfg.MaxFileBytes > 0 && size > w.cfg.MaxFileBytes {
			size = w.cfg.MaxFileBytes
		}
		return WorkloadOp{Kind: OpWrite, Path: f.Path, Size: size}
	case OpReaddir:
		f := w.files[w.written[w.r.Intn(len(w.written))]]
		return WorkloadOp{Kind: OpReaddir, Path: DirOf(f.Path)}
	default: // OpRead, OpStat
		f := w.files[w.written[w.r.Intn(len(w.written))]]
		return WorkloadOp{Kind: kind, Path: f.Path}
	}
}

func (w *Workload) pick() WorkloadOpKind {
	total := w.cfg.ReadFrac + w.cfg.WriteFrac + w.cfg.StatFrac + w.cfg.ReaddirFrac
	v := w.r.Float64() * total
	switch {
	case v < w.cfg.WriteFrac:
		return OpWrite
	case v < w.cfg.WriteFrac+w.cfg.ReadFrac:
		return OpRead
	case v < w.cfg.WriteFrac+w.cfg.ReadFrac+w.cfg.StatFrac:
		return OpStat
	default:
		return OpReaddir
	}
}
