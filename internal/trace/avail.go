package trace

import (
	"math"
	"math/rand"
)

// AvailTrace records hourly machine availability: Up[h][n] reports whether
// node n was up during hour h.
type AvailTrace struct {
	Hours int
	Nodes int
	Up    [][]bool
}

// UpCount returns how many nodes were up at hour h.
func (t *AvailTrace) UpCount(h int) int {
	c := 0
	for _, up := range t.Up[h] {
		if up {
			c++
		}
	}
	return c
}

// MaxSimultaneousFailures returns the largest per-hour down count and the
// hour it occurred.
func (t *AvailTrace) MaxSimultaneousFailures() (hour, down int) {
	for h := 0; h < t.Hours; h++ {
		if d := t.Nodes - t.UpCount(h); d > down {
			down, hour = d, h
		}
	}
	return hour, down
}

// AvailConfig parameterizes the availability-trace generator.
type AvailConfig struct {
	Hours int // trace length; the paper uses 840 (35 days)
	Nodes int // machines in the population

	// MeanUpHours / MeanDownHours set the per-machine two-state Markov
	// chain (geometric sojourn times).
	MeanUpHours   float64
	MeanDownHours float64

	// DiurnalAmplitude modulates the failure hazard over a 24-hour cycle
	// (machines are rebooted/powered off around the working day).
	DiurnalAmplitude float64

	// SpikeHour and SpikeFraction inject the mass-failure event: the paper
	// observes its largest simultaneous failure count (4890 machines) at
	// hour 615, making over 12% of files unavailable without replication.
	SpikeHour     int
	SpikeFraction float64
	SpikeDuration int

	// CorrelationGroups partitions machines into failure domains (subnets,
	// power circuits). During the spike, whole groups fail together rather
	// than independent machines — the mechanism behind the real corporate
	// trace's fat availability tail (the paper's Kosha-3 still loses 0.16%
	// of files at the spike despite three replicas). 0 disables grouping.
	CorrelationGroups int
}

// CorporateAvailConfig mirrors the paper's trace shape (Section 6.3) for a
// given population size.
func CorporateAvailConfig(nodes int) AvailConfig {
	return AvailConfig{
		Hours:            840,
		Nodes:            nodes,
		MeanUpHours:      120,
		MeanDownHours:    4,
		DiurnalAmplitude: 0.5,
		SpikeHour:        615,
		SpikeFraction:    0.14,
		SpikeDuration:    3,
	}
}

// GenAvail synthesizes an availability trace; deterministic per (cfg, seed).
func GenAvail(cfg AvailConfig, seed uint64) *AvailTrace {
	r := rand.New(rand.NewSource(int64(seed)))
	t := &AvailTrace{Hours: cfg.Hours, Nodes: cfg.Nodes}
	t.Up = make([][]bool, cfg.Hours)
	for h := range t.Up {
		t.Up[h] = make([]bool, cfg.Nodes)
	}
	if cfg.Hours == 0 || cfg.Nodes == 0 {
		return t
	}

	failP := 1 / math.Max(cfg.MeanUpHours, 1)
	recoverP := 1 / math.Max(cfg.MeanDownHours, 1)

	// Steady-state initial availability.
	pUp := recoverP / (failP + recoverP)
	up := make([]bool, cfg.Nodes)
	for n := range up {
		up[n] = r.Float64() < pUp
	}

	spiked := make([]int, 0) // nodes taken down by the spike
	for h := 0; h < cfg.Hours; h++ {
		// Diurnal hazard modulation: failures cluster around hour-of-day
		// transitions (a cosine bump peaking at "evening shutdown").
		diurnal := 1 + cfg.DiurnalAmplitude*math.Cos(2*math.Pi*float64(h%24)/24)
		for n := 0; n < cfg.Nodes; n++ {
			if up[n] {
				if r.Float64() < failP*diurnal {
					up[n] = false
				}
			} else {
				if r.Float64() < recoverP {
					up[n] = true
				}
			}
		}
		// Mass-failure event: independent machines, or whole correlation
		// groups, depending on configuration.
		if h == cfg.SpikeHour && cfg.SpikeFraction > 0 {
			if cfg.CorrelationGroups > 1 {
				groupDown := make([]bool, cfg.CorrelationGroups)
				for g := range groupDown {
					groupDown[g] = r.Float64() < cfg.SpikeFraction
				}
				for n := 0; n < cfg.Nodes; n++ {
					if up[n] && groupDown[n%cfg.CorrelationGroups] {
						up[n] = false
						spiked = append(spiked, n)
					}
				}
			} else {
				for n := 0; n < cfg.Nodes; n++ {
					if up[n] && r.Float64() < cfg.SpikeFraction {
						up[n] = false
						spiked = append(spiked, n)
					}
				}
			}
		}
		if cfg.SpikeDuration > 0 && h == cfg.SpikeHour+cfg.SpikeDuration {
			for _, n := range spiked {
				up[n] = true
			}
			spiked = spiked[:0]
		}
		copy(t.Up[h], up)
	}
	return t
}
