package trace

import "testing"

func TestWorkloadSelfConsistent(t *testing.T) {
	fs := GenFS(SmallFSConfig(), 11)
	w := NewWorkload(fs, DefaultWorkloadConfig(), 12)

	inTrace := map[string]bool{}
	dirInTrace := map[string]bool{}
	for _, f := range fs.Files {
		inTrace[f.Path] = true
		dirInTrace[DirOf(f.Path)] = true
	}

	written := map[string]bool{}
	var writes, reads int
	for i := 0; i < 5000; i++ {
		op := w.Next()
		switch op.Kind {
		case OpWrite:
			if !inTrace[op.Path] {
				t.Fatalf("op %d: write path %q not in trace", i, op.Path)
			}
			if op.Size <= 0 || op.Size > 4<<10 {
				t.Fatalf("op %d: write size %d outside (0, 4KiB]", i, op.Size)
			}
			written[op.Path] = true
			writes++
		case OpRead, OpStat:
			if !written[op.Path] {
				t.Fatalf("op %d: %s of never-written path %q", i, op.Kind, op.Path)
			}
			reads++
		case OpReaddir:
			if !dirInTrace[op.Path] {
				t.Fatalf("op %d: readdir of unknown dir %q", i, op.Path)
			}
		}
	}
	if writes == 0 || reads == 0 {
		t.Fatalf("degenerate mix: %d writes, %d reads", writes, reads)
	}
	if w.Written() == 0 {
		t.Fatalf("no distinct files written")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	fs := GenFS(SmallFSConfig(), 11)
	a := NewWorkload(fs, DefaultWorkloadConfig(), 99)
	b := NewWorkload(fs, DefaultWorkloadConfig(), 99)
	for i := 0; i < 2000; i++ {
		if oa, ob := a.Next(), b.Next(); oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
}
