package trace

import (
	"strings"
	"testing"
)

func TestGenFSMatchesTargets(t *testing.T) {
	cfg := SmallFSConfig()
	tr := GenFS(cfg, 42)
	if len(tr.Files) != cfg.Files {
		t.Fatalf("files = %d, want %d", len(tr.Files), cfg.Files)
	}
	if got := tr.TotalBytes(); got != cfg.TotalBytes {
		t.Fatalf("total bytes = %d, want %d", got, cfg.TotalBytes)
	}
	// Every user appears; paths are absolute and under a home dir.
	users := map[string]bool{}
	for _, f := range tr.Files {
		if !strings.HasPrefix(f.Path, "/u") {
			t.Fatalf("bad path %q", f.Path)
		}
		users[strings.SplitN(f.Path[1:], "/", 2)[0]] = true
		if f.Size < 1 {
			t.Fatalf("file %q has size %d", f.Path, f.Size)
		}
	}
	if len(users) != cfg.Users {
		t.Fatalf("users = %d, want %d", len(users), cfg.Users)
	}
}

func TestGenFSDeterministic(t *testing.T) {
	a := GenFS(SmallFSConfig(), 7)
	b := GenFS(SmallFSConfig(), 7)
	if len(a.Files) != len(b.Files) {
		t.Fatal("lengths differ")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
	c := GenFS(SmallFSConfig(), 8)
	same := 0
	for i := range a.Files {
		if a.Files[i] == c.Files[i] {
			same++
		}
	}
	if same == len(a.Files) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenFSDepthBounded(t *testing.T) {
	cfg := SmallFSConfig()
	cfg.MaxDepth = 3
	tr := GenFS(cfg, 3)
	for _, f := range tr.Files {
		// /uNNN/d1/d2/file = depth 3 dirs => ≤ 5 components total.
		parts := strings.Count(f.Path, "/")
		if parts > cfg.MaxDepth+1 {
			t.Fatalf("path %q exceeds depth bound", f.Path)
		}
	}
}

func TestGenFSSkewedOwnership(t *testing.T) {
	tr := GenFS(SmallFSConfig(), 12)
	counts := map[string]int{}
	for _, f := range tr.Files {
		counts[strings.SplitN(f.Path[1:], "/", 2)[0]]++
	}
	// u000 must own several times more files than the median user (Zipf).
	if counts["u000"] < 3*counts["u006"] {
		t.Fatalf("ownership not skewed: u000=%d u006=%d", counts["u000"], counts["u006"])
	}
}

func TestDirOf(t *testing.T) {
	cases := map[string]string{
		"/a/b/c.txt": "/a/b",
		"/a":         "/",
		"noslash":    "/",
	}
	for in, want := range cases {
		if got := DirOf(in); got != want {
			t.Errorf("DirOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPurdueConfigDimensions(t *testing.T) {
	cfg := PurdueFSConfig()
	if cfg.Users != 130 || cfg.Files != 221_000 || cfg.TotalBytes != 17_900<<20 {
		t.Fatalf("config drifted from the paper: %+v", cfg)
	}
}

func TestGenAvailShape(t *testing.T) {
	cfg := CorporateAvailConfig(200)
	tr := GenAvail(cfg, 1)
	if tr.Hours != 840 || tr.Nodes != 200 {
		t.Fatalf("dims: %d x %d", tr.Hours, tr.Nodes)
	}
	// Overall availability should be high (machines are mostly up).
	totalUp := 0
	for h := 0; h < tr.Hours; h++ {
		totalUp += tr.UpCount(h)
	}
	avail := float64(totalUp) / float64(tr.Hours*tr.Nodes)
	if avail < 0.9 || avail > 0.999 {
		t.Fatalf("average availability = %.3f, want ~0.95", avail)
	}
	// The mass-failure spike dominates and sits at the configured hour.
	hour, down := tr.MaxSimultaneousFailures()
	if hour < cfg.SpikeHour || hour > cfg.SpikeHour+cfg.SpikeDuration {
		t.Fatalf("largest failure at hour %d, want near %d", hour, cfg.SpikeHour)
	}
	if frac := float64(down) / float64(tr.Nodes); frac < 0.10 || frac > 0.30 {
		t.Fatalf("spike magnitude %.2f out of range", frac)
	}
}

func TestGenAvailDeterministic(t *testing.T) {
	a := GenAvail(CorporateAvailConfig(50), 9)
	b := GenAvail(CorporateAvailConfig(50), 9)
	for h := 0; h < a.Hours; h++ {
		for n := 0; n < a.Nodes; n++ {
			if a.Up[h][n] != b.Up[h][n] {
				t.Fatalf("trace differs at h=%d n=%d", h, n)
			}
		}
	}
}

func TestGenAvailRecoveryAfterSpike(t *testing.T) {
	cfg := CorporateAvailConfig(300)
	tr := GenAvail(cfg, 4)
	during := tr.UpCount(cfg.SpikeHour)
	after := tr.UpCount(cfg.SpikeHour + cfg.SpikeDuration + 1)
	if after <= during {
		t.Fatalf("no recovery after spike: during=%d after=%d", during, after)
	}
}

func TestGenAvailEmpty(t *testing.T) {
	tr := GenAvail(AvailConfig{}, 0)
	if tr.Hours != 0 || tr.Nodes != 0 {
		t.Fatal("empty config should produce empty trace")
	}
}

func BenchmarkGenFSPurdue(b *testing.B) {
	cfg := PurdueFSConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenFS(cfg, uint64(i))
	}
}

func TestGenAvailCorrelatedSpike(t *testing.T) {
	cfg := CorporateAvailConfig(400)
	cfg.CorrelationGroups = 20
	tr := GenAvail(cfg, 6)
	hour, down := tr.MaxSimultaneousFailures()
	if hour < cfg.SpikeHour || hour > cfg.SpikeHour+cfg.SpikeDuration {
		t.Fatalf("spike at hour %d", hour)
	}
	// With grouped failures the spike magnitude is lumpier but in the same
	// expected range.
	frac := float64(down) / float64(tr.Nodes)
	if frac < 0.03 || frac > 0.5 {
		t.Fatalf("correlated spike fraction %.2f", frac)
	}
	// The machines that failed at the spike must cluster into few groups.
	groups := map[int]bool{}
	for n := 0; n < tr.Nodes; n++ {
		if tr.Up[cfg.SpikeHour-1][n] && !tr.Up[cfg.SpikeHour][n] {
			groups[n%cfg.CorrelationGroups] = true
		}
	}
	if len(groups) >= cfg.CorrelationGroups {
		t.Fatalf("spike failures not clustered: %d of %d groups", len(groups), cfg.CorrelationGroups)
	}
}
