// Package trace synthesizes the two input traces the paper's simulations
// consume, as statistical twins of datasets we cannot redistribute:
//
//   - the Purdue departmental NFS file-system trace (Section 6.2): "221K
//     files of 130 users, for a total of 17.9 GB of data", regenerated with
//     matched file count, user count, total bytes, and realistic tree
//     shapes (Zipf user activity, lognormal file sizes, preferential-
//     attachment directory growth);
//   - the 35-day (840-hour) hourly machine-availability trace from a large
//     corporation (Section 6.3, Bolosky et al.), regenerated with diurnal
//     churn and a mass-failure event at hour 615, where the paper observes
//     its largest simultaneous failure count.
//
// Figures 5-7 depend only on these aggregate properties — placement is
// driven by name hashes and sizes, availability by the up/down matrix — so
// the substitution preserves the measured behaviour.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// File is one regular file in a file-system trace.
type File struct {
	Path string // virtual path, e.g. /u042/projects/sim/run3.dat
	Size int64
}

// FSTrace is a synthesized file-system snapshot.
type FSTrace struct {
	Files []File
	Users int
}

// TotalBytes returns the sum of file sizes.
func (t *FSTrace) TotalBytes() int64 {
	var s int64
	for _, f := range t.Files {
		s += f.Size
	}
	return s
}

// FSConfig parameterizes the file-system trace generator.
type FSConfig struct {
	Users      int   // home directories under the virtual root
	Files      int   // total regular files
	TotalBytes int64 // target sum of sizes (matched exactly by scaling)
	MaxDepth   int   // deepest directory level below a user's home
}

// PurdueFSConfig reproduces the paper's trace dimensions: 221 K files, 130
// users, 17.9 GB (Section 6.2).
func PurdueFSConfig() FSConfig {
	return FSConfig{
		Users:      130,
		Files:      221_000,
		TotalBytes: 17_900 << 20, // 17.9 GB
		MaxDepth:   8,
	}
}

// SmallFSConfig is a scaled-down trace for unit tests and quick runs.
func SmallFSConfig() FSConfig {
	return FSConfig{Users: 12, Files: 2_000, TotalBytes: 64 << 20, MaxDepth: 6}
}

// GenFS synthesizes a file-system trace. The same (cfg, seed) always yields
// the same trace, so experiment sweeps are reproducible.
func GenFS(cfg FSConfig, seed uint64) *FSTrace {
	r := rand.New(rand.NewSource(int64(seed)))
	if cfg.Users <= 0 || cfg.Files <= 0 {
		return &FSTrace{Users: cfg.Users}
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}

	// User activity is Zipf-distributed: a few users own most files, a
	// long tail owns a handful, as on any departmental server.
	weights := make([]float64, cfg.Users)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.9)
		wsum += weights[i]
	}
	perUser := make([]int, cfg.Users)
	assigned := 0
	for i := range perUser {
		perUser[i] = int(float64(cfg.Files) * weights[i] / wsum)
		if perUser[i] < 1 {
			perUser[i] = 1
		}
		assigned += perUser[i]
	}
	// Distribute rounding leftovers (or trim overshoot) on the heaviest
	// users.
	for i := 0; assigned < cfg.Files; i = (i + 1) % cfg.Users {
		perUser[i]++
		assigned++
	}
	for i := 0; assigned > cfg.Files; i = (i + 1) % cfg.Users {
		if perUser[i] > 1 {
			perUser[i]--
			assigned--
		}
	}

	t := &FSTrace{Users: cfg.Users, Files: make([]File, 0, cfg.Files)}
	var total int64
	for u := 0; u < cfg.Users; u++ {
		home := fmt.Sprintf("/u%03d", u)
		// Directory set grows by preferential attachment: each new file
		// either lands in an existing directory (weighted toward busy
		// ones, approximated by uniform choice over the dir list, which
		// itself grows where files land) or spawns a subdirectory.
		dirs := []string{home}
		depth := map[string]int{home: 1}
		for f := 0; f < perUser[u]; f++ {
			parent := dirs[r.Intn(len(dirs))]
			if r.Float64() < 0.08 && depth[parent] < cfg.MaxDepth {
				child := fmt.Sprintf("%s/%s", parent, dirName(r, len(dirs)))
				dirs = append(dirs, child)
				depth[child] = depth[parent] + 1
				parent = child
			}
			// Lognormal sizes: median a few KB, heavy tail into MBs.
			size := int64(math.Exp(r.NormFloat64()*2.0 + 8.5))
			if size < 1 {
				size = 1
			}
			t.Files = append(t.Files, File{
				Path: fmt.Sprintf("%s/f%05d", parent, f),
				Size: size,
			})
			total += size
		}
	}

	// Scale sizes so the trace hits the target byte count exactly (the
	// paper reports a fixed 17.9 GB total).
	if cfg.TotalBytes > 0 && total > 0 {
		scale := float64(cfg.TotalBytes) / float64(total)
		var scaled int64
		for i := range t.Files {
			s := int64(float64(t.Files[i].Size) * scale)
			if s < 1 {
				s = 1
			}
			t.Files[i].Size = s
			scaled += s
		}
		// Absorb the rounding remainder in the largest file.
		if rem := cfg.TotalBytes - scaled; rem != 0 {
			biggest := 0
			for i, f := range t.Files {
				if f.Size > t.Files[biggest].Size {
					biggest = i
				}
			}
			if t.Files[biggest].Size+rem > 0 {
				t.Files[biggest].Size += rem
			}
		}
	}
	return t
}

// commonStems are directory names shared across users; hashing such names
// colocates the colliding directories, which "does not pose a problem in
// distinguishing them, as their paths are unique" (Section 3.1).
var commonStems = []string{"src", "doc", "data", "tmp", "lib", "bin", "test", "mail", "papers", "old"}

// dirName picks a directory name: mostly unique project-style names with a
// minority of common stems, matching the name diversity of a real
// departmental tree.
func dirName(r *rand.Rand, n int) string {
	if r.Float64() < 0.3 {
		return commonStems[r.Intn(len(commonStems))]
	}
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 5)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return fmt.Sprintf("%s%d", b, n)
}

// DirOf returns the directory portion of a trace file path.
func DirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "/"
}
