// Package repro's root benchmarks regenerate every table and figure in the
// paper's evaluation (Section 6). Each benchmark runs the corresponding
// experiment harness and reports the paper's headline quantities as custom
// metrics, so `go test -bench=. -benchmem` doubles as the reproduction run:
//
//	BenchmarkTable1MABScalability    — Table 1: MAB overhead vs node count
//	BenchmarkTable2DistributionLevel — Table 2: MAB overhead vs level
//	BenchmarkFigure5LoadDistribution — Fig 5: per-node load balance
//	BenchmarkFigure6Redirection      — Fig 6: failure ratio vs utilization
//	BenchmarkFigure7Availability     — Fig 7: availability vs replicas
//	BenchmarkOverheadModel           — §6.1.2 analytic model
//
// plus ablation benches for the design choices DESIGN.md calls out
// (synchronous vs asynchronous replication, replica count) and raw
// microbenches of the stack. Full paper-scale tables print via
// `go run ./cmd/koshabench`.
package main

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mab"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/kosha"
)

// BenchmarkTable1MABScalability regenerates Table 1 (Section 6.1.1): the
// Modified Andrew Benchmark on Kosha with 1..8 nodes against the two-node
// NFS baseline. Reported metrics are overhead percentages; the paper
// observes ~4.1% fixed overhead and ~1.5% more from one to eight nodes.
func BenchmarkTable1MABScalability(b *testing.B) {
	opts := experiments.DefaultTable1Options()
	opts.Runs = 4
	if testing.Short() {
		opts.Workload = mab.Tiny()
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KoshaTotal[1].Overhead, "fixed-ovhd-%")
		b.ReportMetric(res.KoshaTotal[8].Overhead, "total8-ovhd-%")
		b.ReportMetric(res.KoshaTotal[8].Overhead-res.KoshaTotal[1].Overhead, "marginal-ovhd-%")
	}
}

// BenchmarkTable2DistributionLevel regenerates Table 2 (Section 6.1.3):
// MAB on four nodes with distribution level 1..4. The paper reports +5%,
// +9%, +10% for levels 2-4 relative to level 1, concentrated in the mkdir
// and copy phases.
func BenchmarkTable2DistributionLevel(b *testing.B) {
	opts := experiments.DefaultTable2Options()
	opts.Runs = 4
	if testing.Short() {
		opts.Workload = mab.Tiny()
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overhead[2], "lvl2-ovhd-%")
		b.ReportMetric(res.Overhead[4], "lvl4-ovhd-%")
		mk := res.Seconds[4][mab.PhaseMkdir] / res.Seconds[1][mab.PhaseMkdir]
		b.ReportMetric(mk, "mkdir-lvl4/lvl1")
	}
}

// BenchmarkFigure5LoadDistribution regenerates Figure 5 (Section 6.2): the
// per-node standard deviation of file-count share as the distribution level
// rises, against the per-file-hashing bound. The paper finds level >= 4
// comparable to hashing individual files.
func BenchmarkFigure5LoadDistribution(b *testing.B) {
	opts := experiments.DefaultFigure5Options()
	opts.Seeds = 10
	if testing.Short() {
		opts.Trace = trace.SmallFSConfig()
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].StdFilesPct, "lvl1-std-%")
		b.ReportMetric(res.Rows[3].StdFilesPct, "lvl4-std-%")
		b.ReportMetric(res.PerFile.StdFilesPct, "perfile-std-%")
	}
}

// BenchmarkFigure6Redirection regenerates Figure 6 (Section 6.2): the
// cumulative insertion-failure ratio versus storage utilization for
// increasing redirection budgets; the paper sees ~0 up to 60% utilization
// with 4 redirects and no more than ~12% approaching 100%.
func BenchmarkFigure6Redirection(b *testing.B) {
	opts := experiments.DefaultFigure6Options()
	opts.Seeds = 5
	if testing.Short() {
		opts.Trace = trace.SmallFSConfig()
		for i := range opts.Capacities {
			opts.Capacities[i] /= 256
		}
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure6(opts)
		if err != nil {
			b.Fatal(err)
		}
		var noRedir, redir4 experiments.Figure6Curve
		for _, c := range res.Curves {
			switch c.Attempts {
			case 0:
				noRedir = c
			case 4:
				redir4 = c
			}
		}
		last := len(redir4.Failure) - 1
		b.ReportMetric(redir4.Failure[last]*100, "redir4-final-fail-%")
		b.ReportMetric(noRedir.Failure[last]*100, "noredir-final-fail-%")
		// Failure ratio at 60% utilization with 4 redirects (paper: ~0).
		for bkt, u := range redir4.Util {
			if u >= 0.6 {
				b.ReportMetric(redir4.Failure[bkt]*100, "redir4-at60-fail-%")
				break
			}
		}
	}
}

// BenchmarkFigure7Availability regenerates Figure 7 (Section 6.3): file
// availability over the 840-hour machine trace for 0..4 replicas. The
// paper's headline: >12% of files unavailable at the hour-615 spike with no
// replicas, near-zero with three, and 99.99%+ average availability.
func BenchmarkFigure7Availability(b *testing.B) {
	opts := experiments.DefaultFigure7Options()
	opts.Runs = 5
	if testing.Short() {
		opts.Trace = trace.SmallFSConfig()
		opts.Nodes = 100
		opts.Avail = trace.CorporateAvailConfig(100)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure7(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			switch s.Replicas {
			case 0:
				b.ReportMetric(s.SpikeUnavail, "k0-spike-unavail-%")
			case 3:
				b.ReportMetric(s.SpikeUnavail, "k3-spike-unavail-%")
				b.ReportMetric(s.AveragePct, "k3-avg-avail-%")
			}
		}
	}
}

// BenchmarkOverheadModel evaluates the Section 6.1.2 analytic model,
// reporting D at the paper's 10^4-node target ("does not exceed 4ms plus a
// constant factor").
func BenchmarkOverheadModel(b *testing.B) {
	opts := experiments.DefaultModelOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunModel(opts)
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.D.Microseconds())/1000, "D-at-10k-ms")
		b.ReportMetric(float64(last.Hops), "hops-at-10k")
	}
}

// --- ablations ---

// BenchmarkAblationSyncReplication quantifies the design choice of keeping
// replica fan-out off the client-visible path: it reruns a write-heavy
// workload with synchronous replication and reports the slowdown.
func BenchmarkAblationSyncReplication(b *testing.B) {
	run := func(sync bool) float64 {
		cfg := core.Config{Replicas: 2, SyncReplication: sync}
		c, err := cluster.New(cluster.Options{Nodes: 6, Seed: 77, Config: cfg})
		if err != nil {
			b.Fatal(err)
		}
		m := c.Mount(0)
		var total simnet.Cost
		payload := make([]byte, 32<<10)
		for i := 0; i < 50; i++ {
			cost, err := m.WriteFile(fmt.Sprintf("/w/f%02d", i), payload)
			if err != nil {
				b.Fatal(err)
			}
			total += cost
		}
		return total.Seconds()
	}
	for i := 0; i < b.N; i++ {
		async := run(false)
		sync := run(true)
		b.ReportMetric(sync/async, "sync/async-slowdown")
	}
}

// BenchmarkAblationReplicaCount measures write cost against replica count
// under synchronous replication, exposing the fan-out price the paper's
// asynchronous design avoids.
func BenchmarkAblationReplicaCount(b *testing.B) {
	for _, k := range []int{0, 1, 3} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			kk := k
			if kk == 0 {
				kk = -1 // Config encodes K=0 as -1
			}
			c, err := cluster.New(cluster.Options{
				Nodes: 8, Seed: 31,
				Config: core.Config{Replicas: kk, SyncReplication: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			m := c.Mount(0)
			payload := make([]byte, 16<<10)
			var total simnet.Cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cost, err := m.WriteFile(fmt.Sprintf("/k/f%04d", i%512), payload)
				if err != nil {
					b.Fatal(err)
				}
				total += cost
			}
			b.ReportMetric(total.Seconds()/float64(b.N)*1e3, "sim-ms/op")
		})
	}
}

// BenchmarkAblationReadFromReplicas measures the Section 4.2 extension:
// read-load spread across holders (reported as the busiest node's share of
// reads) with replica reads off vs on.
func BenchmarkAblationReadFromReplicas(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				Nodes: 8, Seed: 41,
				Config: core.Config{Replicas: 2, ReadFromReplicas: enabled},
			})
			if err != nil {
				b.Fatal(err)
			}
			m := c.Mount(0)
			if _, err := m.WriteFile("/hot/object", make([]byte, 64<<10)); err != nil {
				b.Fatal(err)
			}
			fvh, _, _, err := m.LookupPath("/hot/object")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := m.Read(fvh, 0, 32<<10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			spread := m.ReadSpread()
			var total, max int64
			for _, v := range spread {
				total += v
				if v > max {
					max = v
				}
			}
			if total > 0 {
				b.ReportMetric(float64(max)/float64(total)*100, "busiest-node-%reads")
				b.ReportMetric(float64(len(spread)), "nodes-serving")
			}
		})
	}
}

// BenchmarkAblationMetadataCache quantifies the client-side attribute/name
// caches plus READDIRPLUS batching: a readdir+stat-all-entries scan with the
// caches on vs off, reported as NFS round trips per client operation and the
// percent of RPCs the caches eliminate.
func BenchmarkAblationMetadataCache(b *testing.B) {
	opts := experiments.DefaultCacheAblationOptions()
	if testing.Short() {
		opts.Dirs = 2
		opts.FilesPerDir = 8
		opts.Sweeps = 2
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCacheAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.On.RPCsOp, "rpcs/op-cached")
		b.ReportMetric(res.Off.RPCsOp, "rpcs/op-uncached")
		b.ReportMetric(res.RPCReductionPct, "rpc-reduction-%")
		b.ReportMetric(res.TimeSavedPct, "sim-time-saved-%")
	}
}

// --- microbenches of the full stack ---

// BenchmarkKoshaWrite32K measures real wall-clock throughput of the whole
// stack (overlay + interposition + NFS RPC + replication) for 32 KiB writes.
func BenchmarkKoshaWrite32K(b *testing.B) {
	c, err := kosha.NewCluster(kosha.ClusterOptions{Nodes: 8, Seed: 3, Config: kosha.Config{Replicas: 1}})
	if err != nil {
		b.Fatal(err)
	}
	m := c.Mount(0)
	vh, _, _, err := m.LookupPath("/")
	_ = vh
	if err != nil {
		b.Fatal(err)
	}
	dirVH, _, err := m.MkdirAll("/bench")
	if err != nil {
		b.Fatal(err)
	}
	fvh, _, _, err := m.Create(dirVH, "f", 0o644, false)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	b.SetBytes(32 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Write(fvh, int64(i%64)*(32<<10), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKoshaRead32K measures read throughput through the mount.
func BenchmarkKoshaRead32K(b *testing.B) {
	c, err := kosha.NewCluster(kosha.ClusterOptions{Nodes: 8, Seed: 4, Config: kosha.Config{Replicas: 1}})
	if err != nil {
		b.Fatal(err)
	}
	m := c.Mount(0)
	if _, err := m.WriteFile("/bench/f", make([]byte, 2<<20)); err != nil {
		b.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/bench/f")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(32 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := m.Read(fvh, int64(i%64)*(32<<10), 32<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKoshaLookup measures path resolution with a warm cache.
func BenchmarkKoshaLookup(b *testing.B) {
	c, err := kosha.NewCluster(kosha.ClusterOptions{Nodes: 8, Seed: 5, Config: kosha.Config{Replicas: 1, DistributionLevel: 2}})
	if err != nil {
		b.Fatal(err)
	}
	m := c.Mount(0)
	if _, err := m.WriteFile("/a/b/c/file.txt", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vh, _, _, err := m.LookupPath("/a/b/c/file.txt")
		if err != nil {
			b.Fatal(err)
		}
		_ = vh
	}
}

// BenchmarkParallelMetadata measures hot-path metadata throughput as
// goroutines are added on one shared Mount: warm-cache Lookup + Getattr
// against per-goroutine files, so the only shared state is the sharded
// handle table and metadata caches. Run with -cpu=1,2,4,8 to see the
// scaling the sharded design buys; a global-mutex hot path flatlines here.
func BenchmarkParallelMetadata(b *testing.B) {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes: 8,
		Seed:  6,
		Config: kosha.Config{
			Replicas:     1,
			AttrCacheTTL: time.Hour,
			NameCacheTTL: time.Hour,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	m := c.Mount(0)
	const files = 64
	dirs := make([]core.VH, files)
	for i := 0; i < files; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/par/g%d/file", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
		dvh, _, _, err := m.LookupPath(fmt.Sprintf("/par/g%d", i))
		if err != nil {
			b.Fatal(err)
		}
		dirs[i] = dvh
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		slot := int(next.Add(1)-1) % files
		dvh := dirs[slot]
		for pb.Next() {
			vh, _, _, err := m.Lookup(dvh, "file")
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := m.Getattr(vh); err != nil {
				b.Fatal(err)
			}
			m.Forget(vh)
		}
	})
}
