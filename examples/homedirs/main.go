// Home directories: the paper's motivating deployment (Section 1) — an
// organization moves user home directories onto Kosha so that the unused
// disk space of desktops becomes one shared NFS volume. This example
// populates many users' homes from the synthetic departmental trace,
// shows the balanced spread across nodes, and demonstrates mobility
// transparency when a new desktop joins.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/trace"
	"repro/kosha"
)

func main() {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  8,
		Seed:   130,
		Config: kosha.Config{Replicas: 1, DistributionLevel: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A slice of the departmental trace: 12 users, 2000 files.
	tr := trace.GenFS(trace.SmallFSConfig(), 42)
	m := c.Mount(0)
	// Take a spread of each user's files (the trace is Zipf-skewed, so a
	// plain prefix would be a single user's home).
	perUser := map[string]int{}
	written := 0
	for _, f := range tr.Files {
		user := f.Path[:5] // "/uNNN"
		if perUser[user] >= 34 || written >= 400 {
			continue
		}
		if _, err := m.WriteFile(f.Path, make([]byte, min(f.Size, 4096))); err != nil {
			log.Fatalf("write %s: %v", f.Path, err)
		}
		perUser[user]++
		written++
	}
	fmt.Printf("migrated %d files from the departmental trace into /kosha\n\n", written)

	report := func() {
		stats := c.StoreStats()
		sort.Slice(stats, func(i, j int) bool { return stats[i].Addr < stats[j].Addr })
		var total int64
		for _, s := range stats {
			total += s.Files
		}
		fmt.Println("node        files   share")
		for _, s := range stats {
			bar := ""
			share := float64(s.Files) / float64(total) * 100
			for i := 0; i < int(share/2); i++ {
				bar += "#"
			}
			fmt.Printf("%-10s %6d  %5.1f%% %s\n", s.Addr, s.Files, share, bar)
		}
	}
	fmt.Println("load distribution across desktops (files incl. replicas):")
	report()

	// The root lists every user's home, wherever it landed.
	ents, _, err := m.Readdir(m.Root())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/kosha lists %d home directories: ", len(ents))
	for i, e := range ents {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(e.Name)
	}
	fmt.Println()

	// A new desktop joins: keys closest to its nodeId migrate to it
	// transparently (Section 4.3.1) — no client reconfiguration.
	fmt.Println("\na new desktop joins the overlay...")
	if _, err := c.AddNode(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after migration:")
	report()

	// Files are still where users expect them.
	probe := tr.Files[0].Path
	if _, _, err := c.Mount(8).ReadFile(probe); err != nil {
		log.Fatalf("read %s after join: %v", probe, err)
	}
	fmt.Printf("\n%s still readable through the new desktop's mount\n", probe)
}

func min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
