// Fault tolerance: store files with replication, crash their primary node,
// and keep reading and writing — the failover of Section 4.4 made visible.
// Then revive the node with a fresh identity and watch it rejoin empty.
package main

import (
	"fmt"
	"log"

	"repro/kosha"
)

func main() {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  6,
		Seed:   615, // the paper's most eventful hour
		Config: kosha.Config{Replicas: 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	m := c.Mount(0)
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/vault/doc%d.txt", i)
		if _, err := m.WriteFile(path, []byte(fmt.Sprintf("payload %d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("stored 5 files in /vault with 3 replicas each")

	// Find which node is the primary for /vault and kill it (if it is our
	// client's node, client through another mount).
	pl, _, err := c.Nodes()[0].ResolvePath("/vault")
	if err != nil {
		log.Fatal(err)
	}
	victim := -1
	for i, nd := range c.Nodes() {
		if nd.Addr() == pl.Node {
			victim = i
		}
	}
	if victim == 0 {
		m = c.Mount(1)
	}
	fmt.Printf("primary for /vault is node %d (%s) — crashing it\n", victim, pl.Node)
	c.Fail(victim)

	// Reads transparently land on a replica.
	data, cost, err := m.ReadFile("/vault/doc3.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after crash: %q (simulated %.2f ms, includes failover)\n",
		data, cost.Seconds()*1000)

	// Writes go to the new primary and keep replicating.
	if _, err := m.WriteFile("/vault/doc5.txt", []byte("written during failure")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("write during failure succeeded")

	// Let the overlay repair, then revive the node: it purges its store
	// and rejoins under a new identifier (Section 4.3.2).
	c.Stabilize()
	if err := c.Revive(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d revived with a fresh nodeId; store purged (%d files)\n",
		victim, c.Nodes()[victim].Store().NumFiles())

	// Everything is still there.
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/vault/doc%d.txt", i)
		if _, _, err := m.ReadFile(path); err != nil {
			log.Fatalf("lost %s: %v", path, err)
		}
	}
	fmt.Println("all 6 files still readable after crash + revive: 100% availability")
}
