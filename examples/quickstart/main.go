// Quickstart: build a small Kosha cluster, store files through one node's
// mount, and read them back through another — one shared file system image
// with normal NFS semantics, aggregated from every node's contributed space.
package main

import (
	"fmt"
	"log"

	"repro/kosha"
)

func main() {
	// Eight nodes, two replicas per file, directories hashed at level 1 —
	// the home-directory layout the paper targets (/kosha/$USER).
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  8,
		Seed:   2004,
		Config: kosha.Config{Replicas: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: %d nodes, one overlay\n\n", c.Len())

	// Write through node 0's koshad.
	m := c.Mount(0)
	files := map[string]string{
		"/alice/notes/todo.txt":   "reproduce kosha",
		"/alice/notes/done.txt":   "build the overlay",
		"/bob/thesis/chapter1.md": "# Introduction",
	}
	for path, content := range files {
		if _, err := m.WriteFile(path, []byte(content)); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Printf("wrote %-26s (%d bytes)\n", path, len(content))
	}

	// Read through a different node: location is transparent.
	other := c.Mount(5)
	data, cost, err := other.ReadFile("/alice/notes/todo.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread via node 5: %q (simulated %.2f ms)\n", data, cost.Seconds()*1000)

	// Directory listings union the distributed store.
	vh, _, _, err := other.LookupPath("/alice/notes")
	if err != nil {
		log.Fatal(err)
	}
	ents, _, err := other.Readdir(vh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n/alice/notes:")
	for _, e := range ents {
		fmt.Printf("  %s (%s)\n", e.Name, e.Type)
	}

	// Where did things land? Each user's home hashes to its own node.
	fmt.Println("\nper-node store occupancy:")
	for _, st := range c.StoreStats() {
		fmt.Printf("  %-8s %2d files %6d bytes\n", st.Addr, st.Files, st.Bytes)
	}

	// The aggregated view: one large storage harvested from every node.
	agg, _, err := other.Statfs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregate: %d nodes, %d file copies, %d bytes stored\n",
		agg.Nodes, agg.Files, agg.UsedBytes)
}
