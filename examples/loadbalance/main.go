// Load balance and redirection: sweep the distribution level to see
// directory-granularity balancing converge toward per-file hashing
// (Figure 5), then fill a node past its capacity and watch new directories
// redirect with salted rehashes (Section 3.3) while staying transparently
// accessible under their plain names.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/kosha"
)

func main() {
	// Part 1: distribution level vs balance, measured on a live cluster.
	fmt.Println("=== distribution level vs load balance (16 nodes, live) ===")
	for _, level := range []int{1, 2, 4} {
		c, err := kosha.NewCluster(kosha.ClusterOptions{
			Nodes:  16,
			Seed:   55,
			Config: kosha.Config{Replicas: -1, DistributionLevel: level},
		})
		if err != nil {
			log.Fatal(err)
		}
		m := c.Mount(0)
		for u := 0; u < 6; u++ {
			for d := 0; d < 6; d++ {
				for f := 0; f < 4; f++ {
					path := fmt.Sprintf("/user%d/proj%d-%d/file%d", u, u, d, f)
					if _, err := m.WriteFile(path, make([]byte, 512)); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		var counts []float64
		for _, st := range c.StoreStats() {
			counts = append(counts, float64(st.Files))
		}
		min, max, _ := stats.MinMax(counts)
		fmt.Printf("level %d: files per node mean %.1f  stddev %.1f  min %.0f  max %.0f\n",
			level, stats.Mean(counts), stats.StdDev(counts), min, max)
	}

	// Part 2: capacity redirection.
	fmt.Println("\n=== capacity redirection ===")
	caps := make([]int64, 6)
	for i := range caps {
		caps[i] = 64 << 10 // 64 KiB desktops...
	}
	caps[5] = 0 // ...and one big file server
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:      6,
		Seed:       99,
		Config:     kosha.Config{Replicas: -1, RedirectAttempts: 24, UtilizationLimit: 0.5},
		Capacities: caps,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Fill the small nodes.
	for i := 0; i < 5; i++ {
		c.Nodes()[i].Store().WriteFile(core.RepPath("/ballast"), make([]byte, 48<<10))
	}
	m := c.Mount(0)
	for i := 0; i < 6; i++ {
		dir := fmt.Sprintf("/bulk%d", i)
		if _, err := m.WriteFile(dir+"/data.bin", make([]byte, 2048)); err != nil {
			// A bounded retry budget can exhaust without finding space —
			// exactly the insertion failures Figure 6 counts.
			fmt.Printf("%-8s insertion failed after all redirects: %v\n", dir, err)
			continue
		}
		pl, _, err := c.Nodes()[0].ResolvePath(dir)
		if err != nil {
			log.Fatal(err)
		}
		marker := "direct"
		if core.IsSalted(pl.PN()) {
			marker = fmt.Sprintf("redirected (placement name %q)", pl.PN())
		}
		fmt.Printf("%-8s -> %s  %s\n", dir, pl.Node, marker)
	}
	// Everything stays transparently accessible by its plain name.
	for i := 0; i < 6; i++ {
		if _, _, err := c.Mount(3).ReadFile(fmt.Sprintf("/bulk%d/data.bin", i)); err == nil {
			fmt.Printf("/bulk%d readable through any mount\n", i)
		}
	}
}
